// renuca-coord: the simulation fleet coordinator
// (src/server/coordinator.hpp).
//
// Fronts N renucad workers (started with coordinator=ADDR): clients
// submit jobs here exactly as they would to a single renucad; the
// coordinator shards the work into per-job leases, re-dispatches the
// leases of workers that die or stall, and streams every client's
// reports back in submission order.  SIGINT / SIGTERM drain gracefully.
//
//   ./renuca-coord socket=/tmp/renuca-coord.sock [queue=4096] ...
#include <csignal>
#include <cstdio>
#include <string>

#include "common/kvconfig.hpp"
#include "common/log.hpp"
#include "server/coordinator.hpp"
#include "cli_util.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: renuca-coord [key=value ...]\n"
    "\n"
    "Runs the fleet coordinator until SIGINT/SIGTERM (graceful drain) or a\n"
    "client SHUTDOWN request.  Workers are renucad processes started with\n"
    "coordinator= pointing here.\n"
    "\n"
    "options:\n"
    "  socket=PATH           Unix-domain listen path (default\n"
    "                        /tmp/renuca-coord.sock); clients and workers\n"
    "                        share it\n"
    "  listen=HOST:PORT      also listen on TCP ('*' or empty host = any)\n"
    "  queue=N               fleet backlog bound; full answers BUSY\n"
    "                        (default 4096)\n"
    "  lease_timeout_ms=N    a lease not renewed by its holder's heartbeats\n"
    "                        within this window re-dispatches (default 10000)\n"
    "  heartbeat_timeout_ms=N a worker silent this long is dead\n"
    "                        (default 5000)\n"
    "  max_attempts=N        dispatches per job before a synthetic failure\n"
    "                        (default 5)\n"
    "  idle_timeout_ms=N     close idle client sessions (default 0 = never)\n"
    "  log_level=LEVEL       debug|info|warn|error (default info)\n";

server::Coordinator* g_coord = nullptr;

void onSignal(int) {
  if (g_coord) g_coord->requestStop();
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  if (!kv.positional().empty()) {
    std::fprintf(stderr, "renuca-coord: unexpected argument '%s'\n",
                 kv.positional()[0].c_str());
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (!tools::checkKeys(kv,
                        {"socket", "listen", "queue", "lease_timeout_ms",
                         "heartbeat_timeout_ms", "max_attempts",
                         "idle_timeout_ms", "log_level"},
                        badKey)) {
    std::fprintf(stderr, "renuca-coord: unknown option '%s='\n", badKey.c_str());
    return tools::usage(kUsage, true);
  }
  if (kv.has("log_level")) {
    const std::string name = kv.getOr("log_level", std::string());
    const std::optional<LogLevel> level = logLevelFromString(name);
    if (!level) {
      std::fprintf(stderr, "renuca-coord: bad log_level '%s'\n", name.c_str());
      return tools::usage(kUsage, true);
    }
    setLogLevel(*level);
  }

  server::CoordinatorConfig cfg;
  cfg.socketPath = kv.getOr("socket", std::string("/tmp/renuca-coord.sock"));
  cfg.listenHostPort = kv.getOr("listen", std::string());
  cfg.maxQueue = static_cast<std::size_t>(kv.getOr("queue", std::int64_t{4096}));
  cfg.leaseTimeoutMs =
      static_cast<int>(kv.getOr("lease_timeout_ms", std::int64_t{10000}));
  cfg.heartbeatTimeoutMs =
      static_cast<int>(kv.getOr("heartbeat_timeout_ms", std::int64_t{5000}));
  cfg.maxAttempts = static_cast<int>(kv.getOr("max_attempts", std::int64_t{5}));
  cfg.idleTimeoutMs =
      static_cast<int>(kv.getOr("idle_timeout_ms", std::int64_t{0}));
  if (cfg.maxQueue == 0 || cfg.maxAttempts <= 0 || cfg.leaseTimeoutMs <= 0 ||
      cfg.heartbeatTimeoutMs <= 0) {
    std::fprintf(stderr,
                 "renuca-coord: queue=, max_attempts=, lease_timeout_ms= and "
                 "heartbeat_timeout_ms= must be at least 1\n");
    return tools::usage(kUsage, true);
  }

  server::Coordinator coord(cfg);
  if (!coord.listen()) return 1;

  g_coord = &coord;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  const int rc = coord.run();
  g_coord = nullptr;
  return rc;
}
