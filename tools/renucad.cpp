// renucad: the resident simulation daemon (src/server/server.hpp).
//
// Accepts jobs over a Unix-domain socket (TCP optional), runs them on a
// warm thread pool with warm-state snapshot reuse shared across every
// client, and streams per-job status + run-report JSON back.  SIGINT /
// SIGTERM drain gracefully: admitted jobs finish, their reports are
// delivered, then the process exits 0.
//
//   ./renucad socket=/tmp/renucad.sock [jobs=0] [queue=64] ...
#include <csignal>
#include <cstdio>
#include <string>

#include "common/kvconfig.hpp"
#include "common/log.hpp"
#include "server/server.hpp"
#include "cli_util.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: renucad [key=value ...]\n"
    "\n"
    "Runs the simulation job server until SIGINT/SIGTERM (graceful drain)\n"
    "or a client SHUTDOWN request.\n"
    "\n"
    "options:\n"
    "  socket=PATH           Unix-domain listen path (default /tmp/renucad.sock)\n"
    "  listen=HOST:PORT      also listen on TCP ('*' or empty host = any)\n"
    "  jobs=N                sweep worker threads (default 0 = one per core)\n"
    "  queue=N               admission bound; full queue answers BUSY (default 64)\n"
    "  snapshot_dir=PATH     warm-start snapshot cache shared by all clients\n"
    "  idle_timeout_ms=N     close idle sessions with no jobs in flight\n"
    "                        (default 0 = never)\n"
    "  trace_json=PATH       job-lifecycle Chrome trace (queued/admitted/\n"
    "                        executing spans per job)\n"
    "  log_level=LEVEL       debug|info|warn|error (default info)\n"
    "\n"
    "fleet worker mode:\n"
    "  coordinator=ADDR      dial a renuca-coord and serve its leases; ADDR is\n"
    "                        unix:PATH, a socket path, or host:port (comma-\n"
    "                        separated list fails over).  With no socket= or\n"
    "                        listen= the worker runs with no listener at all.\n"
    "  worker_name=NAME      name registered with the coordinator (default\n"
    "                        w<pid>)\n"
    "  heartbeat_ms=N        heartbeat cadence toward the coordinator\n"
    "                        (default 1000)\n";

server::Server* g_server = nullptr;

void onSignal(int) {
  if (g_server) g_server->requestStop();
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  if (!kv.positional().empty()) {
    std::fprintf(stderr, "renucad: unexpected argument '%s'\n",
                 kv.positional()[0].c_str());
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (!tools::checkKeys(kv,
                        {"socket", "listen", "jobs", "queue", "snapshot_dir",
                         "idle_timeout_ms", "trace_json", "log_level",
                         "coordinator", "worker_name", "heartbeat_ms"},
                        badKey)) {
    std::fprintf(stderr, "renucad: unknown option '%s='\n", badKey.c_str());
    return tools::usage(kUsage, true);
  }
  if (kv.has("log_level")) {
    const std::string name = kv.getOr("log_level", std::string());
    const std::optional<LogLevel> level = logLevelFromString(name);
    if (!level) {
      std::fprintf(stderr, "renucad: bad log_level '%s'\n", name.c_str());
      return tools::usage(kUsage, true);
    }
    setLogLevel(*level);
  }

  server::ServerConfig cfg;
  cfg.coordinatorAddr = kv.getOr("coordinator", std::string());
  cfg.workerName = kv.getOr("worker_name", std::string());
  cfg.heartbeatMs =
      static_cast<int>(kv.getOr("heartbeat_ms", std::int64_t{1000}));
  // A pure fleet worker (coordinator= and no explicit listener) serves
  // leases only; anyone else gets the default Unix listener.
  const bool pureWorker =
      !cfg.coordinatorAddr.empty() && !kv.has("socket") && !kv.has("listen");
  if (!pureWorker) {
    cfg.socketPath = kv.getOr("socket", std::string("/tmp/renucad.sock"));
    cfg.listenHostPort = kv.getOr("listen", std::string());
  }
  cfg.jobs = static_cast<unsigned>(kv.getOr("jobs", std::int64_t{0}));
  cfg.maxQueue = static_cast<std::size_t>(kv.getOr("queue", std::int64_t{64}));
  cfg.snapshotDir = kv.getOr("snapshot_dir", std::string());
  cfg.idleTimeoutMs = static_cast<int>(kv.getOr("idle_timeout_ms", std::int64_t{0}));
  cfg.traceJsonPath = kv.getOr("trace_json", std::string());
  if (cfg.maxQueue == 0) {
    std::fprintf(stderr, "renucad: queue= must be at least 1\n");
    return tools::usage(kUsage, true);
  }
  if (cfg.heartbeatMs <= 0) {
    std::fprintf(stderr, "renucad: heartbeat_ms= must be at least 1\n");
    return tools::usage(kUsage, true);
  }

  server::Server srv(cfg);
  if (!pureWorker && !srv.listen()) return 1;

  g_server = &srv;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  const int rc = srv.run();
  g_server = nullptr;
  return rc;
}
