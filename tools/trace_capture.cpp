// trace_capture: dumps a synthetic application's dynamic instruction
// stream to the binary trace format, so runs can be replayed bit-exactly
// (or swapped for real traces from a PIN-style tool).
//
//   ./trace_capture <app> <out.trace> [count=1000000] [seed=1]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli_util.hpp"
#include "common/kvconfig.hpp"
#include "workload/app_profile.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: trace_capture <app> <out.trace> [key=value ...]\n"
    "\n"
    "Dumps a synthetic application's dynamic instruction stream to the\n"
    "binary trace format for bit-exact replay.\n"
    "\n"
    "options:\n"
    "  count=N   records to capture (default 1000000)\n"
    "  seed=N    generator seed (default 1)\n";

void listApps(std::FILE* to) {
  std::fprintf(to, "apps: ");
  for (const auto& p : workload::spec2006Profiles()) {
    std::fprintf(to, "%s ", p.name.c_str());
  }
  std::fprintf(to, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) {
    const int rc = tools::usage(kUsage, false);
    listApps(stdout);
    return rc;
  }
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  if (kv.positional().size() != 2) {
    std::fprintf(stderr, "trace_capture: expected <app> and <out.trace>\n");
    listApps(stderr);
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (!tools::checkKeys(kv, {"count", "seed"}, badKey)) {
    std::fprintf(stderr, "trace_capture: unknown option '%s='\n", badKey.c_str());
    return tools::usage(kUsage, true);
  }
  const std::string app = kv.positional()[0];
  const std::string out = kv.positional()[1];
  const std::uint64_t count =
      static_cast<std::uint64_t>(kv.getOr("count", std::int64_t{1000000}));
  const std::uint64_t seed = static_cast<std::uint64_t>(kv.getOr("seed", std::int64_t{1}));

  bool knownApp = false;
  for (const auto& p : workload::spec2006Profiles()) {
    if (p.name == app) knownApp = true;
  }
  if (!knownApp) {
    std::fprintf(stderr, "trace_capture: unknown app '%s'\n", app.c_str());
    listApps(stderr);
    return tools::usage(kUsage, true);
  }

  workload::SyntheticGenerator gen(workload::profileByName(app), seed);
  workload::TraceWriter writer(out);
  if (!writer.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 workload::toString(writer.error()).c_str());
    return 1;
  }
  std::uint64_t loads = 0, stores = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    workload::TraceRecord rec = gen.next();
    loads += rec.kind == InstrKind::Load;
    stores += rec.kind == InstrKind::Store;
    writer.append(rec);
  }
  if (!writer.close()) {
    std::fprintf(stderr, "trace write to %s failed: %s\n", out.c_str(),
                 workload::toString(writer.error()).c_str());
    return 1;
  }
  std::printf("%s: wrote %llu records to %s (%llu loads, %llu stores, %.1f MB)\n",
              app.c_str(), static_cast<unsigned long long>(writer.written()),
              out.c_str(), static_cast<unsigned long long>(loads),
              static_cast<unsigned long long>(stores), count * 18.0 / 1e6);
  return 0;
}
