// ckpt_inspect: terminal summarizer for warm-state snapshot archives
// (snapshot_save= / snapshot_dir=).  For a quick look without a debugger:
// validates the framing and every section checksum, prints the section
// table, the configuration fingerprint the snapshot was taken under, the
// per-bank LLC write totals / dead-frame counts (the endurance state the
// snapshot carries), and — for snapshots taken with compression on — the
// per-bank compression/bit-wear state ("cmp<b>"/"cmpmeta" sections).
// Pre-compression checkpoints simply lack those sections and print the
// classic summary unchanged.
//
//   ./ckpt_inspect <snapshot.ckpt> [sections=1] [key=0]
#include <cstdio>
#include <string>

#include "cli_util.hpp"
#include "common/kvconfig.hpp"
#include "serial/archive.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: ckpt_inspect <snapshot.ckpt> [key=value ...]\n"
    "\n"
    "Validates and summarizes a warm-state snapshot archive: framing,\n"
    "section checksums, fingerprint, per-bank endurance state.\n"
    "\n"
    "options:\n"
    "  sections=0|1   print the section table (default 1)\n"
    "  key=0|1        print the full fingerprint key string (default 0)\n";

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  if (kv.positional().size() != 1) {
    std::fprintf(stderr, "ckpt_inspect: expected exactly one snapshot path\n");
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (!tools::checkKeys(kv, {"sections", "key"}, badKey)) {
    std::fprintf(stderr, "ckpt_inspect: unknown option '%s='\n", badKey.c_str());
    return tools::usage(kUsage, true);
  }
  const bool showSections = kv.getOr("sections", std::int64_t{1}) != 0;
  const bool showKey = kv.getOr("key", std::int64_t{0}) != 0;
  const std::string& path = kv.positional()[0];

  serial::ArchiveReader ar(path);
  if (!ar.ok()) {
    std::fprintf(stderr, "ckpt_inspect: %s: %s\n", path.c_str(),
                 serial::toString(ar.error()).c_str());
    return 1;
  }
  std::printf("%s: archive v%u, %zu sections\n", path.c_str(), ar.version(),
              ar.sections().size());

  // Verify every checksum up front so corruption is reported even for
  // sections this tool does not decode.
  bool corrupt = false;
  for (const serial::ArchiveReader::SectionInfo& s : ar.sections()) {
    if (!ar.openSection(s.name)) {
      std::fprintf(stderr, "ckpt_inspect: section '%s' corrupt: %s\n",
                   s.name.c_str(), serial::toString(ar.error()).c_str());
      corrupt = true;
    }
  }

  if (showSections) {
    std::printf("\n%-12s %10s %10s  %s\n", "section", "offset", "bytes", "checksum");
    for (const serial::ArchiveReader::SectionInfo& s : ar.sections()) {
      std::printf("%-12s %10llu %10llu  %016llx\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.size),
                  static_cast<unsigned long long>(s.checksum));
    }
  }

  if (ar.hasSection("meta") && ar.openSection("meta")) {
    std::uint64_t fingerprint = ar.getU64();
    std::string key = ar.getString();
    std::uint32_t cores = ar.getU32();
    bool hasCpt = ar.getBool();
    std::printf("\nfingerprint: %016llx\ncores: %u\npredictor state: %s\n",
                static_cast<unsigned long long>(fingerprint), cores,
                hasCpt ? "yes" : "no");
    if (showKey) std::printf("key: %s\n", key.c_str());
  }

  // Per-bank endurance state: every l3b<N> section opens with the stable
  // head (numSets, ways, totalWrites, deadFrames) exactly for this dump.
  bool header = false;
  for (std::uint32_t b = 0;; ++b) {
    const std::string name = "l3b" + std::to_string(b);
    if (!ar.hasSection(name)) break;
    if (!ar.openSection(name)) break;
    std::uint32_t numSets = ar.getU32();
    std::uint32_t ways = ar.getU32();
    std::uint64_t totalWrites = ar.getU64();
    std::uint32_t deadFrames = ar.getU32();
    if (!ar.ok()) break;
    if (!header) {
      std::printf("\n%-6s %8s %6s %14s %10s\n", "bank", "sets", "ways",
                  "total_writes", "dead");
      header = true;
    }
    std::printf("l3b%-3u %8u %6u %14llu %10u\n", b, numSets, ways,
                static_cast<unsigned long long>(totalWrites), deadFrames);
  }

  // Compression / bit-wear state.  Only snapshots taken with compress= on
  // carry these sections; older (or uncompressed) archives skip this block.
  header = false;
  for (std::uint32_t b = 0;; ++b) {
    const std::string name = "cmp" + std::to_string(b);
    if (!ar.hasSection(name)) break;
    if (!ar.openSection(name)) break;
    const std::uint32_t frames = ar.getU32();
    std::uint64_t storedTotal = 0, written = 0, bitsTotal = 0, maxFrameBits = 0;
    for (std::uint32_t i = 0; i < frames && ar.ok(); ++i) {
      ar.getU8();   // line class
      ar.getU64();  // payload seed
      const std::uint32_t stored = ar.getU32();
      const std::uint64_t wear = ar.getU64();
      if (stored != 0) {
        ++written;
        storedTotal += stored;
      }
      bitsTotal += wear;
      if (wear > maxFrameBits) maxFrameBits = wear;
    }
    const std::uint64_t writes = ar.getU64();
    const std::uint64_t flipped = ar.getU64();
    const std::uint64_t rawFallbacks = ar.getU64();
    const std::uint64_t zeroDelta = ar.getU64();
    for (int i = 0; i < 8; ++i) ar.getU64();  // stored-size histogram
    if (!ar.ok()) {
      std::fprintf(stderr, "ckpt_inspect: section '%s' truncated\n", name.c_str());
      corrupt = true;
      break;
    }
    if (!header) {
      std::printf("\n%-6s %8s %10s %14s %14s %8s %8s\n", "bank", "written",
                  "avg_bits", "bits_flipped", "max_frame_bits", "raw", "zerodelta");
      header = true;
    }
    std::printf("cmp%-3u %8llu %10.1f %14llu %14llu %8llu %8llu\n", b,
                static_cast<unsigned long long>(written),
                written ? static_cast<double>(storedTotal) / static_cast<double>(written)
                        : 0.0,
                static_cast<unsigned long long>(bitsTotal),
                static_cast<unsigned long long>(maxFrameBits),
                static_cast<unsigned long long>(rawFallbacks),
                static_cast<unsigned long long>(zeroDelta));
    (void)writes;
    (void)flipped;
  }
  if (ar.hasSection("cmpmeta") && ar.openSection("cmpmeta")) {
    const std::uint64_t blocks = ar.getU64();
    if (ar.ok()) {
      std::printf("\ncontent versions tracked: %llu block(s)\n",
                  static_cast<unsigned long long>(blocks));
    }
  }

  return corrupt ? 1 : 0;
}
