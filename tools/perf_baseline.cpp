// perf_baseline: pinned-workload simulator-throughput harness.
//
// "How fast is the simulator itself?" needs a fixed yardstick: this tool
// runs a *pinned* fig7/8/9-style quick grid (apps x criticality
// thresholds, single-core rig, fixed budgets — never configurable, that is
// the point of a baseline) N times, takes the median instructions/second,
// runs one extra profiled rep (profile=1) for per-component wall-time
// shares, and writes everything to BENCH_<label>.json.
//
//   ./perf_baseline run label=baseline           # writes BENCH_baseline.json
//   ./perf_baseline run label=current reps=5
//   ./perf_baseline compare BENCH_baseline.json BENCH_current.json
//
// compare exits 1 only when the current median throughput regressed more
// than max_regress_pct= (default 30%) below the baseline — wide enough to
// ride out machine noise, tight enough to catch an accidental O(n^2).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/kvconfig.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "telemetry/json.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: perf_baseline run [key=value ...]\n"
    "       perf_baseline compare BASELINE.json CURRENT.json [key=value ...]\n"
    "\n"
    "run: executes a pinned quick grid (8 apps x 3 criticality thresholds,\n"
    "single-core rig, fixed budgets) reps= times, reports the median\n"
    "simulated instructions/second plus profiled per-component shares, and\n"
    "writes a BENCH_<label>.json document.\n"
    "\n"
    "run options:\n"
    "  label=NAME           document label (default current)\n"
    "  out=FILE             output path (default BENCH_<label>.json)\n"
    "  reps=N               timed repetitions; median wins (default 3)\n"
    "  jobs=N               sweep workers (default 0 = one per core)\n"
    "\n"
    "compare: reads two run documents, prints the speedup factor and the\n"
    "per-component wall-time share shift, and exits 1 iff CURRENT's median\n"
    "instructions/second is more than max_regress_pct= (default 30) percent\n"
    "below BASELINE's.  Improvements exit 0 with an IMPROVEMENT summary.\n"
    "\n"
    "compare options:\n"
    "  max_regress_pct=X    hard-fail regression threshold (default 30)\n";

// The pinned grid.  Changing any of these invalidates every committed
// BENCH_*.json, so they are constants, not options.
const char* kApps[] = {"mcf",    "GemsFDTD", "lbm",   "milc",
                       "astar",  "bwaves",   "bzip2", "leslie3d"};
const double kThresholds[] = {5, 25, 75};
constexpr std::uint64_t kPrewarm = 100000;
constexpr std::uint64_t kWarmup = 5000;
constexpr std::uint64_t kInstrPerCore = 20000;

sim::SweepPlan pinnedPlan(bool profiled) {
  sim::SweepPlan plan;
  for (const char* app : kApps) {
    for (double x : kThresholds) {
      sim::SystemConfig c = sim::singleCore();
      c.prewarmInstrPerCore = kPrewarm;
      c.warmupInstrPerCore = kWarmup;
      c.instrPerCore = kInstrPerCore;
      c.cpt.thresholdPct = x;
      c.profileEnabled = profiled;
      plan.addSingleApp(std::string(app) + "/x" + std::to_string(static_cast<int>(x)),
                        c, app);
    }
  }
  return plan;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

int runCommand(const KvConfig& kv) {
  const std::string label = kv.getOr("label", std::string("current"));
  const std::string out = kv.getOr("out", "BENCH_" + label + ".json");
  const int reps = static_cast<int>(kv.getOr("reps", std::int64_t{3}));
  const unsigned jobs = static_cast<unsigned>(kv.getOr("jobs", std::int64_t{0}));
  if (reps < 1) {
    std::fprintf(stderr, "perf_baseline: reps= must be at least 1\n");
    return 2;
  }

  sim::SweepOptions opts;
  opts.jobs = jobs;

  // Timed reps: profile off, so the measured path is the production one.
  std::vector<double> walls;
  std::uint64_t instructions = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const sim::SweepPlan plan = pinnedPlan(/*profiled=*/false);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<sim::RunResult> results = sim::runPlan(plan, opts);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t instr = 0;
    for (const sim::RunResult& r : results) {
      if (!r.error.empty()) {
        std::fprintf(stderr, "perf_baseline: job failed: %s\n", r.error.c_str());
        return 1;
      }
      // Whole-run work per job: the fast-forward + warm-up instructions
      // dominate wall time, so they count alongside the measured commits.
      instr += kPrewarm + kWarmup;
      for (std::uint64_t c : r.coreCommitted) instr += c;
    }
    walls.push_back(wall);
    instructions = instr;
    std::printf("rep %d/%d: %.3fs, %.0f instr/s\n", rep + 1, reps, wall,
                static_cast<double>(instr) / wall);
  }
  const double medianWall = median(walls);
  const double instrPerSec = static_cast<double>(instructions) / medianWall;

  // One profiled rep for the component breakdown (never timed: the
  // profiler's scope overhead would pollute the throughput number).
  std::map<std::string, double> componentSeconds;
  std::map<std::string, std::uint64_t> componentCounts;
  double profiledTotal = 0.0;
  {
    const sim::SweepPlan plan = pinnedPlan(/*profiled=*/true);
    const std::vector<sim::RunResult> results = sim::runPlan(plan, opts);
    for (const sim::RunResult& r : results) {
      profiledTotal += r.profile.totalSeconds;
      for (const auto& s : r.profile.sections) {
        componentSeconds[s.name] += s.seconds;
        componentCounts[s.name] += s.count;
      }
    }
  }

  std::ostringstream os;
  telemetry::JsonWriter w(os, /*pretty=*/true);
  w.beginObject();
  w.kv("schema", "renuca-perf-baseline-v1");
  w.kv("label", label);
  w.kv("reps", static_cast<std::int64_t>(reps));
  w.kv("jobs", static_cast<std::uint64_t>(sim::resolveJobs(jobs)));
  w.key("grid");
  w.beginObject();
  w.key("apps");
  w.beginArray();
  for (const char* app : kApps) w.value(app);
  w.endArray();
  w.key("thresholds_pct");
  w.beginArray();
  for (double x : kThresholds) w.value(x);
  w.endArray();
  w.kv("prewarm", kPrewarm);
  w.kv("warmup", kWarmup);
  w.kv("instr_per_core", kInstrPerCore);
  w.endObject();
  w.kv("instructions", instructions);
  w.kvArray("wall_seconds", walls);
  w.kv("median_wall_seconds", medianWall);
  w.kv("median_instr_per_sec", instrPerSec);
  w.key("components");
  w.beginArray();
  for (const auto& [name, seconds] : componentSeconds) {
    w.beginObject();
    w.kv("name", name);
    w.kv("seconds", seconds);
    w.kv("share", profiledTotal > 0.0 ? seconds / profiledTotal : 0.0);
    w.kv("count", componentCounts[name]);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << "\n";

  std::ofstream f(out);
  if (!f) {
    std::fprintf(stderr, "perf_baseline: cannot write %s\n", out.c_str());
    return 1;
  }
  f << os.str();
  std::printf("%s: median %.0f instr/s over %d reps -> %s\n", label.c_str(),
              instrPerSec, reps, out.c_str());
  return 0;
}

struct BenchDoc {
  double instrPerSec = 0.0;
  /// Component name -> profiled wall-time share (0..1), from "components".
  std::map<std::string, double> shares;
};

bool readBenchDoc(const std::string& path, BenchDoc& out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "perf_baseline: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << is.rdbuf();
  std::string err;
  const auto doc = telemetry::parseJson(ss.str(), &err);
  if (!doc) {
    std::fprintf(stderr, "perf_baseline: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  const telemetry::JsonValue* v = doc->find("median_instr_per_sec");
  if (v == nullptr || !v->isNumber() || v->number <= 0.0) {
    std::fprintf(stderr, "perf_baseline: %s has no median_instr_per_sec\n",
                 path.c_str());
    return false;
  }
  out.instrPerSec = v->number;
  if (const telemetry::JsonValue* comps = doc->find("components");
      comps != nullptr && comps->isArray()) {
    for (const telemetry::JsonValue& c : comps->array) {
      const telemetry::JsonValue* name = c.find("name");
      const telemetry::JsonValue* share = c.find("share");
      if (name != nullptr && name->isString() && share != nullptr &&
          share->isNumber()) {
        out.shares[name->str] = share->number;
      }
    }
  }
  return true;
}

int compareCommand(const KvConfig& kv, const std::string& basePath,
                   const std::string& curPath) {
  const double maxRegress = kv.getOr("max_regress_pct", 30.0);
  BenchDoc base, cur;
  if (!readBenchDoc(basePath, base) || !readBenchDoc(curPath, cur)) return 1;
  const double deltaPct =
      (base.instrPerSec - cur.instrPerSec) / base.instrPerSec * 100.0;
  const double speedup = cur.instrPerSec / base.instrPerSec;
  std::printf("baseline %.0f instr/s, current %.0f instr/s: %+.1f%% %s\n",
              base.instrPerSec, cur.instrPerSec, -deltaPct,
              deltaPct > 0 ? "(slower)" : "(not slower)");

  // Per-component share shift: where did the wall time move?  Shares sum
  // to ~1 inside each document, so the delta is in percentage points of
  // the respective profiled total, not absolute seconds.
  if (!base.shares.empty() || !cur.shares.empty()) {
    std::map<std::string, double> names;
    for (const auto& [n, s] : base.shares) names[n] = 0.0;
    for (const auto& [n, s] : cur.shares) names[n] = 0.0;
    std::printf("%-12s %9s %9s %9s\n", "component", "base", "current", "delta");
    for (const auto& [n, unused] : names) {
      const auto bi = base.shares.find(n);
      const auto ci = cur.shares.find(n);
      const double bs = bi != base.shares.end() ? bi->second : 0.0;
      const double cs = ci != cur.shares.end() ? ci->second : 0.0;
      std::printf("%-12s %8.1f%% %8.1f%% %+8.1fpp\n", n.c_str(), bs * 100.0,
                  cs * 100.0, (cs - bs) * 100.0);
    }
  }

  if (deltaPct > maxRegress) {
    std::fprintf(stderr,
                 "perf_baseline: FAIL: regression %.1f%% exceeds the %.0f%% "
                 "threshold\n",
                 deltaPct, maxRegress);
    return 1;
  }
  if (speedup >= 1.0) {
    std::printf("IMPROVEMENT: %.2fx speedup over %s\n", speedup,
                basePath.c_str());
  } else {
    std::printf("within the %.0f%% regression threshold (%.2fx)\n", maxRegress,
                speedup);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  const std::vector<std::string>& pos = kv.positional();
  if (pos.empty()) {
    std::fprintf(stderr, "perf_baseline: missing command (run|compare)\n");
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (pos[0] == "run") {
    if (pos.size() != 1) {
      std::fprintf(stderr, "perf_baseline: unexpected argument '%s'\n",
                   pos[1].c_str());
      return tools::usage(kUsage, true);
    }
    if (!tools::checkKeys(kv, {"label", "out", "reps", "jobs"}, badKey)) {
      std::fprintf(stderr, "perf_baseline: unknown option '%s='\n", badKey.c_str());
      return tools::usage(kUsage, true);
    }
    return runCommand(kv);
  }
  if (pos[0] == "compare") {
    if (pos.size() != 3) {
      std::fprintf(stderr, "perf_baseline: compare needs BASELINE.json and "
                           "CURRENT.json\n");
      return tools::usage(kUsage, true);
    }
    if (!tools::checkKeys(kv, {"max_regress_pct"}, badKey)) {
      std::fprintf(stderr, "perf_baseline: unknown option '%s='\n", badKey.c_str());
      return tools::usage(kUsage, true);
    }
    return compareCommand(kv, pos[1], pos[2]);
  }
  std::fprintf(stderr, "perf_baseline: unknown command '%s'\n", pos[0].c_str());
  return tools::usage(kUsage, true);
}
