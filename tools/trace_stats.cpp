// trace_stats: summarizes a binary trace — instruction mix, address
// footprint per region, dependence density, unique PCs — useful both for
// validating captured traces and for characterizing external ones before
// feeding them to the simulator.
//
//   ./trace_stats <trace> [limit=0 (= whole file)]
#include <cstdio>
#include <set>
#include <string>

#include "cli_util.hpp"
#include "common/kvconfig.hpp"
#include "workload/trace.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: trace_stats <trace> [key=value ...]\n"
    "\n"
    "Summarizes a binary instruction trace: mix, footprint, dependence\n"
    "density, distinct PCs.\n"
    "\n"
    "options:\n"
    "  limit=N   stop after N records (default 0 = whole file)\n";

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  if (kv.positional().size() != 1) {
    std::fprintf(stderr, "trace_stats: expected exactly one trace path\n");
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (!tools::checkKeys(kv, {"limit"}, badKey)) {
    std::fprintf(stderr, "trace_stats: unknown option '%s='\n", badKey.c_str());
    return tools::usage(kUsage, true);
  }
  const std::uint64_t limit =
      static_cast<std::uint64_t>(kv.getOr("limit", std::int64_t{0}));

  workload::TraceReader reader(kv.positional()[0], /*wrapAround=*/false);
  if (reader.error() == workload::TraceError::OpenFailed ||
      reader.error() == workload::TraceError::BadHeader) {
    std::fprintf(stderr, "cannot read %s: %s\n", kv.positional()[0].c_str(),
                 workload::toString(reader.error()).c_str());
    return 1;
  }
  std::uint64_t n = 0, loads = 0, stores = 0, deps = 0;
  std::set<std::uint64_t> pcs;
  std::set<std::uint64_t> pages;
  std::uint64_t minAddr = ~0ull, maxAddr = 0;
  while (limit == 0 || n < limit) {
    workload::TraceRecord rec = reader.next();
    if (reader.exhausted()) break;
    ++n;
    pcs.insert(rec.pc);
    deps += rec.depDist > 0;
    if (rec.kind == InstrKind::Load || rec.kind == InstrKind::Store) {
      (rec.kind == InstrKind::Load ? loads : stores) += 1;
      pages.insert(pageOf(rec.vaddr));
      minAddr = std::min(minAddr, rec.vaddr);
      maxAddr = std::max(maxAddr, rec.vaddr);
    }
  }
  if (n == 0) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  std::printf("records        : %llu\n", static_cast<unsigned long long>(n));
  if (!reader.ok()) {
    std::printf("file damage    : %s (%llu stray tail byte(s))\n",
                workload::toString(reader.error()).c_str(),
                static_cast<unsigned long long>(reader.strayTailBytes()));
  }
  std::printf("loads / stores : %.1f%% / %.1f%%\n", 100.0 * loads / n, 100.0 * stores / n);
  std::printf("dependent ops  : %.1f%%\n", 100.0 * deps / n);
  std::printf("distinct PCs   : %zu\n", pcs.size());
  std::printf("touched pages  : %zu (%.1f MB footprint)\n", pages.size(),
              pages.size() * 4096.0 / 1e6);
  if (loads + stores > 0) {
    std::printf("address range  : [0x%llx, 0x%llx]\n",
                static_cast<unsigned long long>(minAddr),
                static_cast<unsigned long long>(maxAddr));
  }
  return 0;
}
