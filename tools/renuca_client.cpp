// renuca_client: submit simulation jobs to a renucad daemon (or run them
// locally with the same spec grammar) and collect run reports.
//
//   ./renuca_client socket=/tmp/renucad.sock app=mcf threshold_pct=25 --wait
//   ./renuca_client socket=/tmp/renucad.sock batch=specs.txt --wait report_dir=out/
//   ./renuca_client socket=/tmp/renucad.sock --stats
//
// A job spec is the key=value grammar of server/jobspec.hpp: rig=, app=,
// mix=, label=, plus any SystemConfig override key.  --local runs the same
// specs in-process through the sweep engine and writes the same reports —
// the determinism contract makes local and served output byte-identical
// modulo the provenance fields, which is exactly what the CI smoke test
// compares.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/kvconfig.hpp"
#include "server/client.hpp"
#include "server/jobspec.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: renuca_client [options] [flags] [spec key=value ...]\n"
    "\n"
    "Submits jobs to a renucad daemon and prints/collects the run reports.\n"
    "Spec keys (rig=, app=, mix=, label=, and any config override such as\n"
    "threshold_pct= or instr_per_core=) are forwarded to the server; see\n"
    "src/server/jobspec.hpp for the grammar.\n"
    "\n"
    "options:\n"
    "  socket=PATH        connect to a Unix-domain socket\n"
    "                     (default /tmp/renucad.sock)\n"
    "  connect=HOST:PORT  connect over TCP instead\n"
    "                     (both accept a comma-separated failover list;\n"
    "                     addresses are tried in order with exponential\n"
    "                     backoff between rounds)\n"
    "  batch=FILE         submit one job per line of FILE (each line is\n"
    "                     space-separated spec key=value tokens; '#' comments)\n"
    "  report_out=FILE    write the single job's report JSON here (default:\n"
    "                     stdout)\n"
    "  report_dir=DIR     write one <label>.json per batch job into DIR\n"
    "  timeout_ms=N       deadline for each read/write on the connection\n"
    "                     (--timeout-ms=N also works; default 0 = wait\n"
    "                     forever — reports can take as long as the jobs do).\n"
    "                     Connects are always bounded (5 s per address).\n"
    "  retries=N          extra connect rounds over the address list before\n"
    "                     giving up (--retries=N also works; default 3)\n"
    "\n"
    "flags:\n"
    "  --wait             stay connected until every submitted job's report\n"
    "                     arrives (otherwise: submit, print job ids, exit)\n"
    "  --stats            print the server's health/metrics JSON and exit\n"
    "  --metrics          print the server's metrics in Prometheus text\n"
    "                     exposition format and exit\n"
    "  --ping             liveness probe: exit 0 iff the server answers\n"
    "  --shutdown         ask the server to drain and exit\n"
    "  --local            run the spec/batch in-process (no server) and write\n"
    "                     the same reports\n";

struct Options {
  std::string socketPath = "/tmp/renucad.sock";
  std::string tcp;
  std::string batchFile;
  std::string reportOut;
  std::string reportDir;
  int timeoutMs = 0;  ///< Read/write deadline; 0 = block (jobs take time).
  int retries = 3;    ///< Extra connect rounds over the address list.
  bool wait = false;
  bool stats = false;
  bool metrics = false;
  bool ping = false;
  bool shutdown = false;
  bool local = false;
};

/// Parses "--name=N" into `value`; false when `flag` is not that option.
bool flagValue(const std::string& flag, const char* name, int& value) {
  const std::string prefix = std::string(name) + "=";
  if (flag.rfind(prefix, 0) != 0) return false;
  value = std::atoi(flag.c_str() + prefix.size());
  return true;
}

/// Turns one batch line ("app=mcf threshold_pct=25") into the newline-
/// separated text the spec parser takes.
std::string lineToSpec(const std::string& line) {
  std::istringstream is(line);
  std::string token, spec;
  while (is >> token) {
    if (token[0] == '#') break;
    spec += token;
    spec += '\n';
  }
  return spec;
}

std::string sanitizeLabel(std::string label) {
  for (char& c : label) {
    if (c == '/' || c == ' ' || c == '\0') c = '_';
  }
  return label.empty() ? std::string("job") : label;
}

bool writeReport(const std::string& path, const std::string& json) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "renuca_client: cannot write %s\n", path.c_str());
    return false;
  }
  os << json;
  return os.good();
}

/// Emits one job's report per the output options.  `label` is only used
/// for report_dir= file naming.
bool emitReport(const Options& opt, const std::string& label, const std::string& json) {
  if (!opt.reportDir.empty())
    return writeReport(opt.reportDir + "/" + sanitizeLabel(label) + ".json", json);
  if (!opt.reportOut.empty()) return writeReport(opt.reportOut, json);
  std::fputs(json.c_str(), stdout);
  return true;
}

/// Loads the job specs this invocation describes: the batch file's lines,
/// or the single spec assembled from the command-line keys.
bool collectSpecs(const Options& opt, const KvConfig& kv,
                  std::vector<std::string>& specs) {
  if (!opt.batchFile.empty()) {
    std::ifstream is(opt.batchFile);
    if (!is) {
      std::fprintf(stderr, "renuca_client: cannot read %s\n", opt.batchFile.c_str());
      return false;
    }
    std::string line;
    while (std::getline(is, line)) {
      const std::string spec = lineToSpec(line);
      if (!spec.empty()) specs.push_back(spec);
    }
    if (specs.empty()) {
      std::fprintf(stderr, "renuca_client: %s has no job specs\n",
                   opt.batchFile.c_str());
      return false;
    }
    return true;
  }
  std::string spec;
  for (const auto& [key, value] : kv.all()) {
    if (key == "socket" || key == "connect" || key == "batch" ||
        key == "report_out" || key == "report_dir" || key == "timeout_ms" ||
        key == "retries")
      continue;
    spec += key + "=" + value + "\n";
  }
  if (spec.empty()) {
    std::fprintf(stderr, "renuca_client: no job spec given\n");
    return false;
  }
  specs.push_back(spec);
  return true;
}

int runLocal(const Options& opt, const std::vector<std::string>& specs) {
  sim::SweepPlan plan;
  std::vector<std::string> labels;
  for (const std::string& spec : specs) {
    sim::Job job;
    std::string err;
    if (!server::parseJobSpec(spec, job, err)) {
      std::fprintf(stderr, "renuca_client: bad spec: %s\n", err.c_str());
      return 1;
    }
    labels.push_back(job.label);
    plan.add(std::move(job));
  }
  sim::SweepOptions opts;
  opts.jobs = 0;  // One worker per core, like the daemon's default.
  const std::vector<sim::RunResult> results = sim::runPlan(plan, opts);
  bool ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string json = sim::runReportJson(
        "renucad", plan.jobs()[i].config, {{labels[i], results[i]}},
        /*wallSeconds=*/0.0, /*jobs=*/1);
    if (!emitReport(opt, labels[i], json)) ok = false;
    if (!results[i].error.empty()) {
      std::fprintf(stderr, "renuca_client: %s failed: %s\n", labels[i].c_str(),
                   results[i].error.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);

  Options opt;
  for (const std::string& flag : kv.positional()) {
    if (flag == "--wait") {
      opt.wait = true;
    } else if (flag == "--stats") {
      opt.stats = true;
    } else if (flag == "--metrics") {
      opt.metrics = true;
    } else if (flag == "--ping") {
      opt.ping = true;
    } else if (flag == "--shutdown") {
      opt.shutdown = true;
    } else if (flag == "--local") {
      opt.local = true;
    } else if (flagValue(flag, "--timeout-ms", opt.timeoutMs) ||
               flagValue(flag, "--retries", opt.retries)) {
      // Parsed in the condition.
    } else {
      std::fprintf(stderr, "renuca_client: unknown flag '%s'\n", flag.c_str());
      return tools::usage(kUsage, true);
    }
  }
  opt.socketPath = kv.getOr("socket", opt.socketPath);
  opt.tcp = kv.getOr("connect", std::string());
  opt.batchFile = kv.getOr("batch", std::string());
  opt.reportOut = kv.getOr("report_out", std::string());
  opt.reportDir = kv.getOr("report_dir", std::string());
  opt.timeoutMs =
      static_cast<int>(kv.getOr("timeout_ms", std::int64_t{opt.timeoutMs}));
  opt.retries = static_cast<int>(kv.getOr("retries", std::int64_t{opt.retries}));
  if (opt.retries < 0) opt.retries = 0;

  if (opt.local) {
    std::vector<std::string> specs;
    if (!collectSpecs(opt, kv, specs)) return tools::usage(kUsage, true);
    return runLocal(opt, specs);
  }

  server::Client client;
  std::string err;
  // socket=/connect= take comma-separated failover lists; connectAny walks
  // them with a bounded per-address connect and exponential backoff between
  // rounds, so a restarting daemon costs a retry, not a hang.
  const std::vector<std::string> addrs = server::Client::splitAddressList(
      opt.tcp.empty() ? opt.socketPath : opt.tcp);
  server::RetryPolicy policy;
  policy.retries = opt.retries;
  if (!client.connectAny(addrs, policy, &err)) {
    std::fprintf(stderr, "renuca_client: connect failed: %s\n", err.c_str());
    return 1;
  }
  client.setIoTimeout(opt.timeoutMs);

  using server::Message;
  using server::Op;

  if (opt.ping || opt.stats || opt.metrics || opt.shutdown) {
    Message req;
    req.op = opt.ping      ? Op::Ping
             : opt.stats   ? Op::Stats
             : opt.metrics ? Op::Metrics
                           : Op::Shutdown;
    req.requestId = 1;
    Message reply;
    if (!client.send(req, &err) || !client.receive(reply, &err)) {
      std::fprintf(stderr, "renuca_client: %s\n", err.c_str());
      return 1;
    }
    if (opt.ping) {
      if (reply.op != Op::Pong) {
        std::fprintf(stderr, "renuca_client: unexpected reply %s\n",
                     server::toString(reply.op));
        return 1;
      }
      std::printf("pong\n");
      return 0;
    }
    if (opt.stats || opt.metrics) {
      const Op want = opt.stats ? Op::StatsReply : Op::MetricsReply;
      if (reply.op != want) {
        std::fprintf(stderr, "renuca_client: unexpected reply %s\n",
                     server::toString(reply.op));
        return 1;
      }
      std::fputs(reply.text.c_str(), stdout);
      return 0;
    }
    if (reply.op != Op::Accepted) {
      std::fprintf(stderr, "renuca_client: shutdown refused: %s\n",
                   reply.text.c_str());
      return 1;
    }
    std::printf("server draining\n");
    return 0;
  }

  std::vector<std::string> specs;
  if (!collectSpecs(opt, kv, specs)) return tools::usage(kUsage, true);

  // Submit everything up front (requestId = 1-based spec index), then
  // collect replies; the protocol multiplexes by requestId.  submit()
  // stamps each spec with a client job id the report echoes back.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (client.submit(specs[i], i + 1, &err).empty()) {
      std::fprintf(stderr, "renuca_client: %s\n", err.c_str());
      return 1;
    }
  }

  std::map<std::uint64_t, std::string> labelByRequest;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    sim::Job parsed;
    std::string ignored;
    labelByRequest[i + 1] = server::parseJobSpec(specs[i], parsed, ignored)
                                ? parsed.label
                                : ("job" + std::to_string(i + 1));
  }

  std::size_t admitted = 0, answered = 0, reportsPending = 0, failures = 0;
  bool submitFailed = false;
  while (answered < specs.size() || (opt.wait && reportsPending > 0)) {
    Message m;
    if (!client.receive(m, &err)) {
      std::fprintf(stderr, "renuca_client: %s\n", err.c_str());
      return 1;
    }
    switch (m.op) {
      case Op::Accepted:
        ++answered;
        ++admitted;
        if (opt.wait) {
          ++reportsPending;
        } else {
          std::printf("accepted %s as job %llu\n",
                      labelByRequest[m.requestId].c_str(),
                      static_cast<unsigned long long>(m.jobId));
        }
        break;
      case Op::Busy:
        ++answered;
        submitFailed = true;
        std::fprintf(stderr, "renuca_client: %s rejected: busy (%s)\n",
                     labelByRequest[m.requestId].c_str(), m.text.c_str());
        break;
      case Op::Error:
        ++answered;
        submitFailed = true;
        std::fprintf(stderr, "renuca_client: %s rejected: %s\n",
                     labelByRequest[m.requestId].c_str(), m.text.c_str());
        break;
      case Op::Status:
        std::fprintf(stderr, "[%s] job %llu: %s%s%s\n",
                     labelByRequest[m.requestId].c_str(),
                     static_cast<unsigned long long>(m.jobId),
                     server::toString(m.state), m.text.empty() ? "" : ": ",
                     m.text.c_str());
        break;
      case Op::Report:
        if (reportsPending > 0) --reportsPending;
        if (m.state == server::JobState::Failed) ++failures;
        if (!emitReport(opt, labelByRequest[m.requestId], m.text)) ++failures;
        break;
      default:
        std::fprintf(stderr, "renuca_client: unexpected frame %s\n",
                     server::toString(m.op));
        break;
    }
  }
  if (!opt.wait && admitted > 0) {
    std::fprintf(stderr,
                 "renuca_client: %zu job(s) admitted; reports stay on the "
                 "server connection (use --wait to collect them)\n",
                 admitted);
  }
  return (submitFailed || failures > 0) ? 1 : 0;
}
