// trace_view: terminal summarizer for the Chrome trace_event JSON files
// the simulator emits (trace_json=).  For a quick look without loading
// Perfetto: validates the document, prints the event census per name, and
// the latency distribution of every span kind.
//
//   ./trace_view <trace.json> [top=20]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/kvconfig.hpp"
#include "telemetry/json.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: trace_view <trace.json> [key=value ...]\n"
    "\n"
    "Summarizes a Chrome trace_event JSON file (trace_json= output):\n"
    "event census per name and span latency distributions.\n"
    "\n"
    "options:\n"
    "  top=N   show at most N span/instant rows per table (default 20)\n"
    "\n"
    "flags:\n"
    "  --summary   also print per-category span rollups (count, total and\n"
    "              percentile durations), grouping spans by their cat field\n";

struct SpanStats {
  std::uint64_t count = 0;
  double durSum = 0;
  double durMax = 0;
  std::vector<double> durs;
};

double pct(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  std::size_t i = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[i];
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  bool summary = false;
  std::vector<std::string> paths;
  for (const std::string& p : kv.positional()) {
    if (p == "--summary") {
      summary = true;
    } else if (!p.empty() && p[0] == '-') {
      std::fprintf(stderr, "trace_view: unknown flag '%s'\n", p.c_str());
      return tools::usage(kUsage, true);
    } else {
      paths.push_back(p);
    }
  }
  if (paths.size() != 1) {
    std::fprintf(stderr, "trace_view: expected exactly one trace.json path\n");
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (!tools::checkKeys(kv, {"top"}, badKey)) {
    std::fprintf(stderr, "trace_view: unknown option '%s='\n", badKey.c_str());
    return tools::usage(kUsage, true);
  }
  const std::size_t top =
      static_cast<std::size_t>(kv.getOr("top", std::int64_t{20}));

  std::ifstream is(paths[0]);
  if (!is) {
    std::fprintf(stderr, "trace_view: cannot open %s\n", paths[0].c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  std::string err;
  auto doc = telemetry::parseJson(buf.str(), &err);
  if (!doc) {
    std::fprintf(stderr, "trace_view: invalid JSON: %s\n", err.c_str());
    return 1;
  }
  const telemetry::JsonValue* events = doc->find("traceEvents");
  if (!events || !events->isArray()) {
    std::fprintf(stderr, "trace_view: no traceEvents array (not a trace file?)\n");
    return 1;
  }

  std::map<std::string, std::uint64_t> instants;
  std::map<std::string, SpanStats> spans;
  std::map<std::string, SpanStats> cats;  // --summary: spans rolled up by cat
  std::uint64_t metadata = 0, counters = 0, other = 0;
  double tsMin = 0, tsMax = 0;
  bool tsSeen = false;

  for (const telemetry::JsonValue& e : events->array) {
    const telemetry::JsonValue* ph = e.find("ph");
    const telemetry::JsonValue* name = e.find("name");
    if (!ph || !ph->isString() || !name || !name->isString()) {
      ++other;
      continue;
    }
    if (const telemetry::JsonValue* ts = e.find("ts"); ts && ts->isNumber()) {
      double end = ts->number;
      if (const telemetry::JsonValue* dur = e.find("dur"); dur && dur->isNumber()) {
        end += dur->number;
      }
      tsMin = tsSeen ? std::min(tsMin, ts->number) : ts->number;
      tsMax = tsSeen ? std::max(tsMax, end) : end;
      tsSeen = true;
    }
    if (ph->str == "M") {
      ++metadata;
    } else if (ph->str == "C") {
      ++counters;
    } else if (ph->str == "i" || ph->str == "I") {
      ++instants[name->str];
    } else if (ph->str == "X") {
      SpanStats& s = spans[name->str];
      ++s.count;
      const telemetry::JsonValue* dur = e.find("dur");
      double d = dur && dur->isNumber() ? dur->number : 0;
      s.durSum += d;
      s.durMax = std::max(s.durMax, d);
      s.durs.push_back(d);
      if (summary) {
        const telemetry::JsonValue* cat = e.find("cat");
        SpanStats& c = cats[cat && cat->isString() ? cat->str : "(none)"];
        ++c.count;
        c.durSum += d;
        c.durMax = std::max(c.durMax, d);
        c.durs.push_back(d);
      }
    } else {
      ++other;
    }
  }

  std::printf("%s: %zu events", paths[0].c_str(), events->array.size());
  if (tsSeen) std::printf(", cycles [%.0f, %.0f]", tsMin, tsMax);
  std::printf("\n  metadata %llu, counters %llu, other %llu\n\n",
              static_cast<unsigned long long>(metadata),
              static_cast<unsigned long long>(counters),
              static_cast<unsigned long long>(other));

  std::printf("spans (cycles):\n");
  std::printf("  %-16s %10s %8s %8s %8s %8s\n", "name", "count", "mean", "p50",
              "p99", "max");
  std::size_t shown = 0;
  for (auto& [n, s] : spans) {
    if (shown++ >= top) break;
    std::printf("  %-16s %10llu %8.1f %8.0f %8.0f %8.0f\n", n.c_str(),
                static_cast<unsigned long long>(s.count),
                s.durSum / static_cast<double>(s.count), pct(s.durs, 0.5),
                pct(s.durs, 0.99), s.durMax);
  }

  if (!instants.empty()) {
    std::printf("\ninstants:\n");
    shown = 0;
    for (const auto& [n, c] : instants) {
      if (shown++ >= top) break;
      std::printf("  %-16s %10llu\n", n.c_str(), static_cast<unsigned long long>(c));
    }
  }

  if (summary) {
    std::printf("\ncategories (span rollup, cycles):\n");
    std::printf("  %-16s %10s %12s %8s %8s %8s\n", "cat", "count", "total",
                "p50", "p99", "max");
    for (auto& [n, s] : cats) {
      std::printf("  %-16s %10llu %12.0f %8.0f %8.0f %8.0f\n", n.c_str(),
                  static_cast<unsigned long long>(s.count), s.durSum,
                  pct(s.durs, 0.5), pct(s.durs, 0.99), s.durMax);
    }
  }
  return 0;
}
