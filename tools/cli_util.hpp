// Shared command-line conventions for the tools/ binaries.
//
// Every tool follows the same contract:
//  * `--help` (or `-h`) anywhere on the line prints the usage text to
//    stdout and exits 0;
//  * misuse — missing positionals, an unknown `key=` option, an unknown
//    flag — prints the same usage text to stderr and exits 2;
//  * the usage text names every `key=` option the tool accepts, with its
//    default.
#pragma once

#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <string>

#include "common/kvconfig.hpp"

namespace renuca::tools {

inline bool wantsHelp(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0)
      return true;
  }
  return false;
}

/// Prints the usage text and returns the exit code for the situation:
/// stdout/0 for an explicit --help, stderr/2 for misuse.
inline int usage(const char* text, bool misuse) {
  std::fputs(text, misuse ? stderr : stdout);
  return misuse ? 2 : 0;
}

/// True when every key of `kv` is in the allowlist; otherwise fills
/// `badKey` with the first offender (the tool's misuse path).
inline bool checkKeys(const KvConfig& kv, std::initializer_list<const char*> allowed,
                      std::string& badKey) {
  for (const auto& [key, value] : kv.all()) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      badKey = key;
      return false;
    }
  }
  return true;
}

}  // namespace renuca::tools
