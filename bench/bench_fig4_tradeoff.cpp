// Figure 4(b): the lifetime-vs-performance trade-off of the baseline
// schemes.  Each scheme is one point: x = mean system IPC across the ten
// workloads, y = harmonic-mean lifetime over all banks and workloads.
//
// Paper shape: Naive top-left (best lifetime, worst IPC), Private
// bottom-right (best IPC, worst lifetime), S-NUCA and R-NUCA between —
// motivating a scheme that is good on both axes (Re-NUCA, shown for
// comparison).
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  KvConfig kv = setup(argc, argv, "Fig 4(b): lifetime vs performance trade-off", cfg);
  BenchSession session(kv, "fig4_tradeoff", cfg);
  sim::PolicySweep sweep = runPolicySweep(kv, cfg, sim::allPolicies(), session);

  TextTable t({"scheme", "mean system IPC", "h-mean lifetime (y)", "raw min (y)"});
  for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
    rram::LifetimeAggregator agg(16);
    for (const auto& r : sweep.results[p]) agg.addRun(r.bankLifetimeYears);
    t.addRow({core::toString(sweep.policies[p]),
              TextTable::num(sweep.meanSystemIpc(p), 2),
              TextTable::num(agg.harmonicOverall(), 2),
              TextTable::num(sweep.rawMinLifetime(p), 2)});
  }
  std::printf("%s", t.toString().c_str());
  std::printf("\npaper shape: Naive has the best lifetime and the worst IPC; Private\n"
              "the reverse; Re-NUCA sits near S-NUCA in lifetime and near R-NUCA in IPC.\n");
  return 0;
}
