// Figure 7: Criticality Predictor Table accuracy versus the criticality
// threshold x, for the paper's eight applications.  One single-core run
// per (app, threshold).
//
// "Accuracy" here is the recall of critical loads — the fraction of loads
// that DID stall the ROB head which the CPT flagged critical at issue.
// (It cannot be plain prediction-outcome agreement: the paper reports
// 14.5 % at the 100 % threshold, but with >80 % of loads non-critical a
// predict-nothing predictor already agrees >80 % of the time.)
//
// Paper shape: recall falls as the threshold rises — ~83 % average at
// x = 3 % down to ~14.5 % at x = 100 % — which is why the paper picks 3 %.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  cfg.applyOverrides(kv);
  std::printf("== Fig 7: criticality prediction accuracy vs threshold ==\n");
  std::printf("config: %s\n\n", cfg.summary().c_str());
  BenchSession session(kv, "fig7_predictor_accuracy", cfg);

  std::vector<std::string> headers = {"app"};
  for (double x : thresholdSweep()) headers.push_back(TextTable::num(x, 0) + "%");
  TextTable t(headers);

  std::vector<double> avg(thresholdSweep().size(), 0.0);
  for (const std::string& app : criticalityApps()) {
    std::vector<std::string> row = {app};
    for (std::size_t i = 0; i < thresholdSweep().size(); ++i) {
      sim::SystemConfig c = cfg;
      c.cpt.thresholdPct = thresholdSweep()[i];
      sim::RunResult r = sim::runSingleApp(c, app);
      row.push_back(TextTable::pct(r.cptCriticalRecall, 1));
      avg[i] += r.cptCriticalRecall;
      session.add(app + "/x" + TextTable::num(thresholdSweep()[i], 0), std::move(r));
    }
    t.addRow(row);
  }
  t.addSeparator();
  std::vector<std::string> avgRow = {"Avg"};
  for (double a : avg) {
    avgRow.push_back(TextTable::pct(a / criticalityApps().size(), 1));
  }
  t.addRow(avgRow);
  std::printf("%s", t.toString().c_str());
  std::printf("\npaper: ~83%% average at 3%%, ~14.5%% at 100%% (recall of critical loads).\n");
  return 0;
}
