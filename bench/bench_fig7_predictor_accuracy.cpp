// Figure 7: Criticality Predictor Table accuracy versus the criticality
// threshold x, for the paper's eight applications.  One single-core run
// per (app, threshold).
//
// "Accuracy" here is the recall of critical loads — the fraction of loads
// that DID stall the ROB head which the CPT flagged critical at issue.
// (It cannot be plain prediction-outcome agreement: the paper reports
// 14.5 % at the 100 % threshold, but with >80 % of loads non-critical a
// predict-nothing predictor already agrees >80 % of the time.)
//
// Paper shape: recall falls as the threshold rises — ~83 % average at
// x = 3 % down to ~14.5 % at x = 100 % — which is why the paper picks 3 %.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = setup(argc, argv, "Fig 7: criticality prediction accuracy vs threshold",
                      cfg, {}, /*benchDefaults=*/false);
  BenchSession session(kv, "fig7_predictor_accuracy", cfg);
  runThresholdGrid(kv, cfg, session, &sim::RunResult::cptCriticalRecall);
  std::printf("\npaper: ~83%% average at 3%%, ~14.5%% at 100%% (recall of critical loads).\n");
  return 0;
}
