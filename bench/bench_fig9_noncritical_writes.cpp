// Figure 9: percentage of LLC writes (fills + write-backs) landing on
// non-critical blocks, versus the criticality threshold.  These are the
// writes Re-NUCA can spread with S-NUCA without hurting performance.
//
// Paper shape: ~50 % of writes go to non-critical blocks at x = 3 %.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = setup(argc, argv, "Fig 9: LLC writes to non-critical blocks vs threshold",
                      cfg, {}, /*benchDefaults=*/false);
  BenchSession session(kv, "fig9_noncritical_writes", cfg);
  runThresholdGrid(kv, cfg, session, &sim::RunResult::nonCriticalWriteFrac);
  std::printf("\npaper: ~50%% of LLC writes target non-critical blocks at 3%%.\n");
  return 0;
}
