// Figure 9: percentage of LLC writes (fills + write-backs) landing on
// non-critical blocks, versus the criticality threshold.  These are the
// writes Re-NUCA can spread with S-NUCA without hurting performance.
//
// Paper shape: ~50 % of writes go to non-critical blocks at x = 3 %.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  cfg.applyOverrides(kv);
  std::printf("== Fig 9: LLC writes to non-critical blocks vs threshold ==\n");
  std::printf("config: %s\n\n", cfg.summary().c_str());
  BenchSession session(kv, "fig9_noncritical_writes", cfg);

  std::vector<std::string> headers = {"app"};
  for (double x : thresholdSweep()) headers.push_back(TextTable::num(x, 0) + "%");
  TextTable t(headers);

  std::vector<double> avg(thresholdSweep().size(), 0.0);
  for (const std::string& app : criticalityApps()) {
    std::vector<std::string> row = {app};
    for (std::size_t i = 0; i < thresholdSweep().size(); ++i) {
      sim::SystemConfig c = cfg;
      c.cpt.thresholdPct = thresholdSweep()[i];
      sim::RunResult r = sim::runSingleApp(c, app);
      row.push_back(TextTable::pct(r.nonCriticalWriteFrac, 1));
      avg[i] += r.nonCriticalWriteFrac;
      session.add(app + "/x" + TextTable::num(thresholdSweep()[i], 0), std::move(r));
    }
    t.addRow(row);
  }
  t.addSeparator();
  std::vector<std::string> avgRow = {"Avg"};
  for (double a : avg) {
    avgRow.push_back(TextTable::pct(a / criticalityApps().size(), 1));
  }
  t.addRow(avgRow);
  std::printf("%s", t.toString().c_str());
  std::printf("\npaper: ~50%% of LLC writes target non-critical blocks at 3%%.\n");
  return 0;
}
