// Component micro-benchmarks (google-benchmark): throughput of the cache
// bank, BusyCalendar, mesh, DRAM models, CPT, TLB, synthetic generator,
// and the end-to-end walk — the knobs that set overall simulation speed.
#include <benchmark/benchmark.h>

#include "common/busy_calendar.hpp"
#include "common/rng.hpp"
#include "core/cpt.hpp"
#include "dram/dram.hpp"
#include "dram/frfcfs.hpp"
#include "mem/cache.hpp"
#include "noc/mesh.hpp"
#include "sim/memory_system.hpp"
#include "tlb/tlb.hpp"
#include "workload/generator.hpp"

namespace renuca {
namespace {

void BM_CacheBankAccess(benchmark::State& state) {
  mem::CacheConfig cfg;
  cfg.sizeBytes = 2 * 1024 * 1024;
  cfg.ways = 16;
  cfg.trackFrameWrites = true;
  mem::CacheBank bank(cfg, "bench");
  Pcg32 rng(1);
  // Pre-fill.
  for (BlockAddr b = 0; b < 32768; ++b) bank.insert(b, false);
  for (auto _ : state) {
    BlockAddr b = rng.nextBelow(65536);
    if (!bank.access(b, AccessType::Read)) bank.insert(b, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheBankAccess);

void BM_BusyCalendarReserve(benchmark::State& state) {
  BusyCalendar cal;
  Pcg32 rng(2);
  Cycle t = 0;
  for (auto _ : state) {
    t += rng.nextBelow(20);
    benchmark::DoNotOptimize(cal.reserve(t + rng.nextBelow(200), 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusyCalendarReserve);

void BM_MeshTraverse(benchmark::State& state) {
  noc::MeshNoc mesh(noc::NocConfig{});
  Pcg32 rng(3);
  Cycle t = 0;
  for (auto _ : state) {
    t += 3;
    benchmark::DoNotOptimize(
        mesh.traverse(rng.nextBelow(16), rng.nextBelow(16), t, 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshTraverse);

void BM_DramAccess(benchmark::State& state) {
  dram::DramController dram(dram::DramConfig{});
  Pcg32 rng(4);
  Cycle t = 0;
  for (auto _ : state) {
    t += 10;
    benchmark::DoNotOptimize(
        dram.access(static_cast<Addr>(rng.next()) * 64, AccessType::Read, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void BM_FrFcfsDrain(benchmark::State& state) {
  Pcg32 rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    dram::FrFcfsQueue q(dram::DramConfig{});
    for (std::uint64_t i = 0; i < 64; ++i) {
      q.push(dram::MemRequest{static_cast<Addr>(rng.next()) * 64,
                              AccessType::Read, i, i});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(q.drainAll());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FrFcfsDrain);

void BM_CptPredictTrain(benchmark::State& state) {
  core::CriticalityPredictorTable cpt(core::CptConfig{});
  Pcg32 rng(6);
  for (auto _ : state) {
    std::uint64_t pc = 0x400000 + rng.nextBelow(2000) * 4;
    benchmark::DoNotOptimize(cpt.predict(pc));
    cpt.train(pc, rng.chance(0.1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CptPredictTrain);

void BM_TlbTranslate(benchmark::State& state) {
  tlb::PageTable pt;
  tlb::EnhancedTlb tlb(tlb::TlbConfig{}, &pt, 0, "bench");
  Pcg32 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tlb.translate(static_cast<Addr>(rng.nextBelow(256)) << kPageShift));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbTranslate);

void BM_GeneratorNext(benchmark::State& state) {
  workload::SyntheticGenerator gen(workload::profileByName("mcf"), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneratorNext);

void BM_MemorySystemWalk(benchmark::State& state) {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.policy = static_cast<core::PolicyKind>(state.range(0));
  sim::MemorySystem ms(cfg);
  Pcg32 rng(9);
  Cycle t = 0;
  for (auto _ : state) {
    t += 20;
    CoreId c = rng.nextBelow(16);
    Addr va = 0x100000 + static_cast<Addr>(rng.nextBelow(100000)) * 64;
    benchmark::DoNotOptimize(ms.load(c, va, 0x400, t, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemorySystemWalk)
    ->Arg(static_cast<int>(core::PolicyKind::SNuca))
    ->Arg(static_cast<int>(core::PolicyKind::RNuca))
    ->Arg(static_cast<int>(core::PolicyKind::ReNuca))
    ->Arg(static_cast<int>(core::PolicyKind::Naive));

}  // namespace
}  // namespace renuca
