// Figure 8: percentage of cache blocks fetched from memory that are
// non-critical, versus the criticality threshold.  Measured at LLC fill
// time with the predictor's verdict under each threshold.
//
// Paper shape: ~50.3 % of fetched blocks are non-critical at x = 3 %,
// rising toward ~100 % at stringent thresholds.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  cfg.applyOverrides(kv);
  std::printf("== Fig 8: non-critical cache blocks vs threshold ==\n");
  std::printf("config: %s\n\n", cfg.summary().c_str());
  BenchSession session(kv, "fig8_noncritical_blocks", cfg);

  std::vector<std::string> headers = {"app"};
  for (double x : thresholdSweep()) headers.push_back(TextTable::num(x, 0) + "%");
  TextTable t(headers);

  std::vector<double> avg(thresholdSweep().size(), 0.0);
  for (const std::string& app : criticalityApps()) {
    std::vector<std::string> row = {app};
    for (std::size_t i = 0; i < thresholdSweep().size(); ++i) {
      sim::SystemConfig c = cfg;
      c.cpt.thresholdPct = thresholdSweep()[i];
      sim::RunResult r = sim::runSingleApp(c, app);
      row.push_back(TextTable::pct(r.nonCriticalFillFrac, 1));
      avg[i] += r.nonCriticalFillFrac;
      session.add(app + "/x" + TextTable::num(thresholdSweep()[i], 0), std::move(r));
    }
    t.addRow(row);
  }
  t.addSeparator();
  std::vector<std::string> avgRow = {"Avg"};
  for (double a : avg) {
    avgRow.push_back(TextTable::pct(a / criticalityApps().size(), 1));
  }
  t.addRow(avgRow);
  std::printf("%s", t.toString().c_str());
  std::printf("\npaper: ~50.3%% of fetched blocks are non-critical at the 3%% threshold.\n");
  return 0;
}
