// Figure 8: percentage of cache blocks fetched from memory that are
// non-critical, versus the criticality threshold.  Measured at LLC fill
// time with the predictor's verdict under each threshold.
//
// Paper shape: ~50.3 % of fetched blocks are non-critical at x = 3 %,
// rising toward ~100 % at stringent thresholds.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = setup(argc, argv, "Fig 8: non-critical cache blocks vs threshold",
                      cfg, {}, /*benchDefaults=*/false);
  BenchSession session(kv, "fig8_noncritical_blocks", cfg);
  runThresholdGrid(kv, cfg, session, &sim::RunResult::nonCriticalFillFrac);
  std::printf("\npaper: ~50.3%% of fetched blocks are non-critical at the 3%% threshold.\n");
  return 0;
}
