// Table III: raw minimum lifetimes (years) of every scheme under the four
// configurations — the default "Actual Results" plus the three sensitivity
// variants (L2-128KB, L3-1MB, ROB-168).
//
// Paper reference:
//                Naive  S-NUCA  Re-NUCA  R-NUCA  Private
//   Actual        4.95   3.37    3.24     2.38    2.32
//   L2-128KB      7.14   3.90    3.09     2.31    2.31
//   L3-1MB        3.64   1.67    1.67     1.38    1.38
//   ROB-168       7.06   3.26    3.26     2.33    2.32
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig base = sim::defaultConfig();
  KvConfig kv = setup(argc, argv, "Table III: raw minimum lifetimes", base);

  struct RowSpec {
    const char* name;
    sim::SystemConfig cfg;
  };
  std::vector<RowSpec> rows = {
      {"Actual Results", sim::defaultConfig()},
      {"L2-128KB", sim::l2Small()},
      {"L3-1MB", sim::l3Small()},
      {"ROB-168", sim::robLarge()},
  };

  std::vector<std::string> headers = {"Configuration"};
  for (core::PolicyKind p : sim::allPolicies()) headers.push_back(core::toString(p));
  TextTable t(headers);

  auto mixes = benchMixes(kv);
  BenchSession session(kv, "table3_raw_min_lifetime", base);
  for (RowSpec& row : rows) {
    applyBenchDefaults(row.cfg);
    row.cfg.applyOverrides(kv);
    sim::PolicySweep sweep = sim::sweepPolicies(row.cfg, sim::allPolicies(), mixes);
    session.addSweep(sweep, row.name);
    std::vector<std::string> cells = {row.name};
    for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
      cells.push_back(TextTable::num(sweep.rawMinLifetime(p), 2));
    }
    t.addRow(cells);
    std::printf("%s row done\n", row.name);
  }
  std::printf("\n%s", t.toString().c_str());
  std::printf("(raw minimum bank lifetime in years over all banks and workloads)\n");
  return 0;
}
