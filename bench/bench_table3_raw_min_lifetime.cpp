// Table III: raw minimum lifetimes (years) of every scheme under the four
// configurations — the default "Actual Results" plus the three sensitivity
// variants (L2-128KB, L3-1MB, ROB-168).
//
// Paper reference:
//                Naive  S-NUCA  Re-NUCA  R-NUCA  Private
//   Actual        4.95   3.37    3.24     2.38    2.32
//   L2-128KB      7.14   3.90    3.09     2.31    2.31
//   L3-1MB        3.64   1.67    1.67     1.38    1.38
//   ROB-168       7.06   3.26    3.26     2.33    2.32
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig base = sim::defaultConfig();
  KvConfig kv = setup(argc, argv, "Table III: raw minimum lifetimes", base);

  struct RowSpec {
    const char* name;
    sim::SystemConfig cfg;
  };
  std::vector<RowSpec> rows = {
      {"Actual Results", sim::defaultConfig()},
      {"L2-128KB", sim::l2Small()},
      {"L3-1MB", sim::l3Small()},
      {"ROB-168", sim::robLarge()},
  };

  std::vector<std::string> headers = {"Configuration"};
  for (core::PolicyKind p : sim::allPolicies()) headers.push_back(core::toString(p));
  TextTable t(headers);

  auto mixes = benchMixes(kv);
  BenchSession session(kv, "table3_raw_min_lifetime", base);

  // One combined plan across all four configurations: 4 x |policies| x
  // |mixes| independent jobs, so every worker stays busy for the whole
  // table instead of draining at each row boundary.
  sim::SweepPlan plan;
  for (RowSpec& row : rows) {
    applyBenchDefaults(row.cfg);
    row.cfg.applyOverrides(kv);
    sim::SweepPlan rowPlan = sim::policySweepPlan(row.cfg, sim::allPolicies(), mixes);
    for (const sim::Job& j : rowPlan.jobs()) {
      sim::Job labeled = j;
      labeled.label = std::string(row.name) + "/" + j.label;
      plan.add(std::move(labeled));
    }
  }
  std::vector<sim::RunResult> results = runJobs(kv, plan, &session);

  const std::size_t perRow = sim::allPolicies().size() * mixes.size();
  for (std::size_t ri = 0; ri < rows.size(); ++ri) {
    std::vector<sim::RunResult> slice(results.begin() + ri * perRow,
                                      results.begin() + (ri + 1) * perRow);
    sim::PolicySweep sweep =
        sim::assemblePolicySweep(sim::allPolicies(), mixes, std::move(slice));
    std::vector<std::string> cells = {rows[ri].name};
    for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
      cells.push_back(TextTable::num(sweep.rawMinLifetime(p), 2));
    }
    t.addRow(cells);
    std::printf("%s row done\n", rows[ri].name);
  }
  std::printf("\n%s", t.toString().c_str());
  std::printf("(raw minimum bank lifetime in years over all banks and workloads)\n");
  return 0;
}
