// Table II + Figure 2: per-application LLC characteristics on the
// single-core rig (2.4 GHz OoO core, 256 KB L2, 2 MB L3) — WPKI, MPKI,
// LLC hit rate, and IPC, measured next to the paper's reference values.
#include "bench_util.hpp"
#include "workload/app_profile.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 40000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = setup(argc, argv, "Table II / Fig 2: application characteristics (single core)",
                      cfg, {}, /*benchDefaults=*/false);
  BenchSession session(kv, "table2_app_characteristics", cfg);

  std::vector<std::string> apps;
  for (const workload::AppProfile& p : workload::spec2006Profiles()) {
    apps.push_back(p.name);
  }
  std::vector<sim::RunResult> results = runAppsSingleCore(kv, cfg, apps, session);

  TextTable t({"app", "class", "WPKI", "(ref)", "MPKI", "(ref)", "hit", "(ref)",
               "IPC", "(ref)", "WPKI+MPKI"});
  double sumW = 0, sumM = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const workload::AppProfile& p = workload::profileByName(apps[i]);
    const sim::RunResult& r = results[i];
    const char* cls = p.intensity() == workload::WriteIntensity::High     ? "high"
                      : p.intensity() == workload::WriteIntensity::Medium ? "medium"
                                                                          : "low";
    t.addRow({p.name, cls,
              TextTable::num(r.wpki[0], 2), TextTable::num(p.ref.wpki, 2),
              TextTable::num(r.mpki[0], 2), TextTable::num(p.ref.mpki, 2),
              TextTable::num(r.llcHitRate[0], 2), TextTable::num(p.ref.hitrate, 2),
              TextTable::num(r.coreIpc[0], 2), TextTable::num(p.ref.ipc, 2),
              TextTable::num(r.wpki[0] + r.mpki[0], 2)});
    sumW += r.wpki[0];
    sumM += r.mpki[0];
  }
  std::printf("%s", t.toString().c_str());
  std::printf("totals: WPKI %.1f, MPKI %.1f (paper: 305.9, 203.3)\n", sumW, sumM);
  std::printf("\nFig 2 series (WPKI+MPKI per app) is the last column.\n");
  return 0;
}
