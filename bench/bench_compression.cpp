// The compression headline figure: lifetime x IPC for {S-NUCA, R-NUCA,
// Re-NUCA} x {uncompressed, compressed}.
//
// Each policy is run twice on the same mixes and seed: once with
// compress=none (classic full-line wear: every LLC write charges 512 cell
// writes) and once with the compression engine on (default bdi+fpc;
// override with compress=bdi|fpc|bdi+fpc), where a write charges only the
// cells it actually flips.  The compressed arm's lifetime uses the
// bit-accurate accounting (effective writes = bits/512, DESIGN.md §18) and
// pays the decompression latency on every LLC read hit — so the table
// shows the real trade: how much minimum-bank lifetime the flipped-bit
// savings buy, against the IPC cost of the decompressor on the read path.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  KvConfig kv = setup(argc, argv, "Compression: lifetime x IPC", cfg);
  BenchSession session(kv, "compression", cfg);

  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::SNuca, core::PolicyKind::RNuca, core::PolicyKind::ReNuca};

  sim::SystemConfig off = cfg;
  off.compress = compress::Kind::None;
  sim::SystemConfig on = cfg;
  if (on.compress == compress::Kind::None) on.compress = compress::Kind::BdiFpc;

  sim::PolicySweep base = runPolicySweep(kv, off, policies, session, "none");
  sim::PolicySweep comp = runPolicySweep(kv, on, policies, session, "cmp");

  TextTable t({"scheme", "IPC", "min life (y)", "IPC cmp", "min life cmp (y)",
               "life gain", "IPC cost"});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const double ipc0 = base.meanSystemIpc(p);
    const double life0 = base.rawMinLifetime(p);
    const double ipc1 = comp.meanSystemIpc(p);
    double life1 = 0.0;
    bool first = true;
    for (const sim::RunResult& r : comp.results[p]) {
      const double y = r.minBankLifetimeBits();
      if (first || y < life1) life1 = y;
      first = false;
    }
    t.addRow({core::toString(policies[p]), TextTable::num(ipc0, 2),
              TextTable::num(life0, 2), TextTable::num(ipc1, 2),
              TextTable::num(life1, 2),
              TextTable::num(life0 > 0 ? life1 / life0 : 0.0, 2) + "x",
              TextTable::num(ipc0 > 0 ? (ipc0 - ipc1) / ipc0 * 100.0 : 0.0, 1) + "%"});
  }
  std::printf("%s", t.toString().c_str());

  // Engine behavior over the compressed arm: how often lines compressed,
  // how small they got, and how many rewrites flipped nothing.
  std::uint64_t writes = 0, raw = 0, zero = 0, hist[8] = {};
  for (const auto& perPolicy : comp.results) {
    for (const sim::RunResult& r : perPolicy) {
      writes += r.cmpWrites;
      raw += r.cmpRawFallbacks;
      zero += r.cmpZeroDeltaWrites;
      for (int i = 0; i < 8; ++i) hist[i] += r.cmpSizeHist[i];
    }
  }
  double storedBits = 0.0;
  for (int i = 0; i < 8; ++i) storedBits += static_cast<double>(hist[i]) * (i * 64 + 32);
  std::printf("\ncompressed writes: %llu  raw fallbacks: %.1f%%  zero-delta: %.1f%%  "
              "mean stored size: ~%.0f bits (of 512)\n",
              static_cast<unsigned long long>(writes),
              writes ? 100.0 * static_cast<double>(raw) / static_cast<double>(writes) : 0.0,
              writes ? 100.0 * static_cast<double>(zero) / static_cast<double>(writes) : 0.0,
              writes ? storedBits / static_cast<double>(writes) : 0.0);
  std::printf("expected shape: every scheme gains minimum-bank lifetime under\n"
              "compression (fewer cells flipped per write) at a small IPC cost\n"
              "(decompression on the LLC read-hit path).\n");
  return 0;
}
