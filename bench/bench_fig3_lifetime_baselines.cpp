// Figure 3: per-bank harmonic-mean lifetimes (years) of the four baseline
// schemes — S-NUCA, R-NUCA, Private, and the Naive perfect-wear-leveling
// oracle — across the ten standard workload mixes.
//
// Paper shape: S-NUCA banks near-uniform; R-NUCA with large bank-to-bank
// variation; Private with the most variation (heavily written local banks
// under 2 years); Naive perfectly level and highest.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  KvConfig kv = setup(argc, argv, "Fig 3: harmonic-mean lifetime, baseline schemes", cfg);
  BenchSession session(kv, "fig3_lifetime_baselines", cfg);
  sim::PolicySweep sweep = runPolicySweep(kv, cfg, sim::baselinePolicies(), session);
  printLifetimeBars(sweep);

  std::printf("\npaper reference (raw minimum, years): Naive 4.95, S-NUCA 3.37, "
              "R-NUCA 2.38, Private 2.32\n");
  std::printf("wear-level spread (max/min of harmonic means, 1.0 = perfect):\n");
  for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
    rram::LifetimeAggregator agg(16);
    for (const auto& r : sweep.results[p]) agg.addRun(r.bankLifetimeYears);
    std::printf("  %-8s %.2f\n", core::toString(sweep.policies[p]), agg.harmonicSpread());
  }
  return 0;
}
