// Ablation: end-to-end effect of the criticality threshold on Re-NUCA.
// The paper sweeps the threshold only for predictor metrics (Figs 7-9);
// this bench closes the loop — for each threshold it runs the full system
// and reports lifetime and IPC, showing why 3 % is a good operating point
// (low thresholds mark more loads critical, trading wear for latency).
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.policy = core::PolicyKind::ReNuca;
  KvConfig kv = setup(argc, argv, "Ablation: criticality threshold, end to end", cfg);
  BenchSession session(kv, "ablation_threshold", cfg);
  auto mixes = benchMixes(kv);

  // One plan: the S-NUCA reference runs plus every (threshold x mix) run.
  sim::SweepPlan plan;
  sim::SystemConfig snucaCfg = cfg;
  snucaCfg.policy = core::PolicyKind::SNuca;
  for (const auto& mix : mixes) {
    plan.add(sim::Job{"SNuca/" + mix.name, snucaCfg, mix});
  }
  for (double x : thresholdSweep()) {
    sim::SystemConfig c = cfg;
    c.cpt.thresholdPct = x;
    for (const auto& mix : mixes) {
      plan.add(sim::Job{"x" + TextTable::num(x, 0) + "/" + mix.name, c, mix});
    }
  }
  std::vector<sim::RunResult> results = runJobs(kv, plan, &session);

  double snucaIpc = 0;
  std::size_t i = 0;
  for (std::size_t m = 0; m < mixes.size(); ++m) snucaIpc += results[i++].systemIpc;
  snucaIpc /= mixes.size();

  TextTable t({"threshold", "raw min (y)", "h-mean (y)", "IPC vs S-NUCA",
               "critical fills"});
  for (double x : thresholdSweep()) {
    rram::LifetimeAggregator agg(16);
    double ipc = 0, critFills = 0;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const sim::RunResult& r = results[i++];
      agg.addRun(r.bankLifetimeYears);
      ipc += r.systemIpc;
      critFills += 1.0 - r.nonCriticalFillFrac;
    }
    ipc /= mixes.size();
    t.addRow({TextTable::num(x, 0) + "%",
              TextTable::num(agg.rawMinimum(), 2),
              TextTable::num(agg.harmonicOverall(), 2),
              TextTable::num((ipc / snucaIpc - 1.0) * 100.0, 1) + "%",
              TextTable::pct(critFills / mixes.size(), 1)});
  }
  std::printf("%s", t.toString().c_str());
  std::printf("\nlower thresholds mark more fills critical (R-NUCA-placed):\n"
              "IPC approaches R-NUCA while lifetime approaches R-NUCA too.\n");
  return 0;
}
