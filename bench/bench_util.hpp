// Shared plumbing for the bench binaries: argument handling, standard
// header, the parallel sweep driver, and the sweep-to-table conversions
// every figure reuses.
//
// Every bench accepts "key=value" overrides (see SystemConfig::applyOverrides),
// most importantly:
//   instr_per_core=N  warmup=N  prewarm=N  seed=N  threshold_pct=X
// plus "mixes=N" to run on the first N of the ten standard workloads and
// "jobs=N" to run the bench's independent simulations on N worker threads
// (0 = one per hardware thread; results are identical for any N).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/kvconfig.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "workload/mixes.hpp"

namespace renuca::bench {

/// Default measurement budgets for multi-core sweeps: large enough for
/// stable rates, small enough that the full suite runs in tens of minutes.
inline void applyBenchDefaults(sim::SystemConfig& cfg) {
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 8000;
}

/// Sweep-engine options from the standard `jobs=` key (default 1 =
/// serial, 0 = hardware threads).  Progress narration is on only when the
/// run is actually parallel, so serial output matches today's exactly.
inline sim::SweepOptions sweepOptions(const KvConfig& kv) {
  sim::SweepOptions opts;
  opts.jobs = static_cast<unsigned>(kv.getOr("jobs", static_cast<std::int64_t>(1)));
  opts.narrate = opts.jobs != 1;
  // snapshot_dir= turns on warm-start snapshot sharing: jobs with matching
  // warm-up-relevant configs share one post-fast-forward snapshot, and the
  // directory persists across benches so later plans reuse it.
  if (auto p = kv.getString("snapshot_dir")) opts.warmStartDir = *p;
  return opts;
}

/// Validates every key=value against the config registry (plus any
/// bench-specific `extraKeys`).  Problems are warnings by default; with
/// strict=1 they abort the run with exit code 2, so a misspelled key can
/// never silently fall back to a default.
inline void validateOrDie(const KvConfig& kv,
                          const std::vector<std::string>& extraKeys = {}) {
  std::vector<ConfigError> errs = sim::validateConfigKeys(kv, extraKeys);
  for (const ConfigError& e : errs) {
    std::fprintf(stderr, "config: %s\n", e.toString().c_str());
  }
  if (!errs.empty() && kv.getOr("strict", false)) {
    std::fprintf(stderr, "strict=1: refusing to run with invalid configuration\n");
    std::exit(2);
  }
}

/// Parses overrides (validated against the key registry; see validateOrDie)
/// and prints the standard bench header.  `benchDefaults=false` keeps the
/// budgets the bench set itself (the single-core characterization rigs).
inline KvConfig setup(int argc, char** argv, const char* title,
                      sim::SystemConfig& cfg,
                      const std::vector<std::string>& extraKeys = {},
                      bool benchDefaults = true) {
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  if (benchDefaults) applyBenchDefaults(cfg);
  validateOrDie(kv, extraKeys);
  cfg.applyOverrides(kv);
  std::printf("== %s ==\n", title);
  std::printf("config: %s\n\n", cfg.summary().c_str());
  return kv;
}

/// Machine-readable run report for one bench invocation.  Construct after
/// setup(), feed it every RunResult the bench produces, and the destructor
/// writes a "renuca-run-report-v4" JSON document to the `report_json=` path
/// (no path, no file — the tables on stdout are unaffected either way).
class BenchSession {
 public:
  BenchSession(const KvConfig& kv, std::string benchName, const sim::SystemConfig& cfg)
      : name_(std::move(benchName)), cfg_(cfg),
        jobs_(sim::resolveJobs(sweepOptions(kv).jobs)),
        start_(std::chrono::steady_clock::now()) {
    if (auto p = kv.getString("report_json")) path_ = *p;
  }
  ~BenchSession() { finish(); }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  void add(std::string label, sim::RunResult result) {
    entries_.push_back({std::move(label), std::move(result)});
  }

  /// Adds every (policy, mix) run of a sweep, labeled "[prefix/]Policy/mix".
  void addSweep(const sim::PolicySweep& sweep, const std::string& prefix = "") {
    for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
      for (std::size_t m = 0; m < sweep.mixes.size(); ++m) {
        add((prefix.empty() ? "" : prefix + "/") +
                std::string(core::toString(sweep.policies[p])) + "/" +
                sweep.mixes[m].name,
            sweep.at(p, m));
      }
    }
  }

  /// Writes the report now (idempotent; also called by the destructor).
  void finish() {
    if (done_) return;
    done_ = true;
    if (path_.empty()) return;
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_).count();
    sim::writeRunReport(path_, name_, cfg_, entries_, wall, jobs_);
  }

 private:
  std::string name_;
  std::string path_;
  sim::SystemConfig cfg_;
  unsigned jobs_ = 1;
  std::vector<sim::ReportEntry> entries_;
  std::chrono::steady_clock::time_point start_;
  bool done_ = false;
};

/// First `mixes=` (default all ten) standard workload mixes.
inline std::vector<workload::WorkloadMix> benchMixes(const KvConfig& kv) {
  const auto& all = workload::standardMixes();
  std::size_t n = static_cast<std::size_t>(
      kv.getOr("mixes", static_cast<std::int64_t>(all.size())));
  if (n > all.size()) n = all.size();
  return {all.begin(), all.begin() + n};
}

// --- Shared sweep drivers ---------------------------------------------------
// Every bench funnels its simulations through one of these: the plan is
// built up front, executed on `jobs=` worker threads, and the results come
// back in plan order (so tables and run reports are identical for any
// worker count).

/// Runs an explicit plan and (optionally) records every result in the
/// session under its job label.
inline std::vector<sim::RunResult> runJobs(const KvConfig& kv, const sim::SweepPlan& plan,
                                           BenchSession* session = nullptr) {
  std::vector<sim::RunResult> results = sim::runPlan(plan, sweepOptions(kv));
  if (session) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      session->add(plan.jobs()[i].label, results[i]);
    }
  }
  return results;
}

/// The standard figure driver: (policies x benchMixes) under `cfg`,
/// recorded in the session (labels "[prefix/]Policy/mix").
inline sim::PolicySweep runPolicySweep(const KvConfig& kv, const sim::SystemConfig& cfg,
                                       const std::vector<core::PolicyKind>& policies,
                                       BenchSession& session,
                                       const std::string& prefix = "") {
  sim::PolicySweep sweep =
      sim::sweepPolicies(cfg, policies, benchMixes(kv), sweepOptions(kv));
  session.addSweep(sweep, prefix);
  return sweep;
}

/// Per-bank harmonic lifetime table (the bar groups of Figs 3/12/13/15/17).
inline void printLifetimeBars(const sim::PolicySweep& sweep) {
  std::vector<std::string> headers = {"bank"};
  for (core::PolicyKind p : sweep.policies) headers.push_back(core::toString(p));
  TextTable t(headers);
  std::size_t banks = sweep.harmonicLifetimesPerBank(0).size();
  std::vector<std::vector<double>> perPolicy;
  for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
    perPolicy.push_back(sweep.harmonicLifetimesPerBank(p));
  }
  for (std::size_t b = 0; b < banks; ++b) {
    std::vector<std::string> row = {"CB-" + std::to_string(b)};
    for (const auto& v : perPolicy) row.push_back(TextTable::num(v[b], 2));
    t.addRow(row);
  }
  t.addSeparator();
  std::vector<std::string> minRow = {"rawMin"}, ipcRow = {"IPC vs S-NUCA"};
  for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
    minRow.push_back(TextTable::num(sweep.rawMinLifetime(p), 2));
    ipcRow.push_back(TextTable::num(sweep.meanIpcImprovementVsSnuca(p), 1) + "%");
  }
  t.addRow(minRow);
  t.addRow(ipcRow);
  std::printf("%s", t.toString().c_str());
  std::printf("(harmonic-mean bank lifetimes in years across %zu workloads)\n",
              sweep.mixes.size());
}

/// Per-workload IPC improvement table (Figs 11/14/16/18).
inline void printIpcImprovements(const sim::PolicySweep& sweep) {
  std::vector<std::string> headers = {"workload"};
  for (core::PolicyKind p : sweep.policies) {
    if (p != core::PolicyKind::SNuca) headers.push_back(core::toString(p));
  }
  TextTable t(headers);
  for (std::size_t m = 0; m < sweep.mixes.size(); ++m) {
    std::vector<std::string> row = {sweep.mixes[m].name};
    for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
      if (sweep.policies[p] == core::PolicyKind::SNuca) continue;
      row.push_back(TextTable::num(sweep.ipcImprovementVsSnuca(p)[m], 1) + "%");
    }
    t.addRow(row);
  }
  t.addSeparator();
  std::vector<std::string> avg = {"Avg"};
  for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
    if (sweep.policies[p] == core::PolicyKind::SNuca) continue;
    avg.push_back(TextTable::num(sweep.meanIpcImprovementVsSnuca(p), 1) + "%");
  }
  t.addRow(avg);
  std::printf("%s", t.toString().c_str());
  std::printf("(system-IPC improvement over S-NUCA, %%)\n");
}

/// The paper's criticality-threshold sweep (Figs 7/8/9).
inline const std::vector<double>& thresholdSweep() {
  static const std::vector<double> v = {3, 5, 10, 20, 25, 33, 50, 75, 100};
  return v;
}

/// The eight applications the paper uses for the criticality figures.
inline const std::vector<std::string>& criticalityApps() {
  static const std::vector<std::string> v = {
      "mcf", "GemsFDTD", "lbm", "milc", "astar", "bwaves", "bzip2", "leslie3d"};
  return v;
}

/// The (app x threshold) single-core grid behind Figs 7/8/9: runs every
/// criticality app under every threshold of thresholdSweep() and prints a
/// percentage table of `metric` per cell plus the per-threshold average.
/// Returns the averages (one per threshold).
inline std::vector<double> runThresholdGrid(const KvConfig& kv,
                                            const sim::SystemConfig& singleCoreCfg,
                                            BenchSession& session,
                                            double sim::RunResult::* metric) {
  sim::SweepPlan plan;
  for (const std::string& app : criticalityApps()) {
    for (double x : thresholdSweep()) {
      sim::SystemConfig c = singleCoreCfg;
      c.cpt.thresholdPct = x;
      plan.addSingleApp(app + "/x" + TextTable::num(x, 0), c, app);
    }
  }
  std::vector<sim::RunResult> results = runJobs(kv, plan, &session);

  std::vector<std::string> headers = {"app"};
  for (double x : thresholdSweep()) headers.push_back(TextTable::num(x, 0) + "%");
  TextTable t(headers);
  std::vector<double> avg(thresholdSweep().size(), 0.0);
  std::size_t i = 0;
  for (const std::string& app : criticalityApps()) {
    std::vector<std::string> row = {app};
    for (std::size_t k = 0; k < thresholdSweep().size(); ++k) {
      double v = results[i++].*metric;
      row.push_back(TextTable::pct(v, 1));
      avg[k] += v;
    }
    t.addRow(row);
  }
  t.addSeparator();
  std::vector<std::string> avgRow = {"Avg"};
  for (double& a : avg) {
    a /= static_cast<double>(criticalityApps().size());
    avgRow.push_back(TextTable::pct(a, 1));
  }
  t.addRow(avgRow);
  std::printf("%s", t.toString().c_str());
  return avg;
}

/// Runs every listed app alone on the single-core rig (Table II / Fig 5),
/// in parallel, returning results in app order and recording each under
/// its app name.
inline std::vector<sim::RunResult> runAppsSingleCore(const KvConfig& kv,
                                                     const sim::SystemConfig& singleCoreCfg,
                                                     const std::vector<std::string>& apps,
                                                     BenchSession& session) {
  sim::SweepPlan plan;
  for (const std::string& app : apps) plan.addSingleApp(app, singleCoreCfg, app);
  return runJobs(kv, plan, &session);
}

}  // namespace renuca::bench
