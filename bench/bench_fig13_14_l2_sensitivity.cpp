// Figures 13 & 14: sensitivity to L2 size — 128 KB instead of 256 KB.
// A smaller L2 misses more and writes back more, raising LLC write
// pressure; lifetimes shorten across the board.
//
// Paper: Re-NUCA still wear-levels R-NUCA (raw min 3.09 vs 2.31 years,
// +34.8 %) at a performance cost of only ~1.5 % vs R-NUCA.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::l2Small();
  KvConfig kv = setup(argc, argv, "Figs 13/14: L2 = 128 KB sensitivity", cfg);
  BenchSession session(kv, "fig13_14_l2_sensitivity", cfg);
  sim::PolicySweep sweep = runPolicySweep(kv, cfg, sim::allPolicies(), session);

  std::printf("--- Fig 13: per-bank harmonic lifetimes ---\n");
  printLifetimeBars(sweep);
  std::printf("\n--- Fig 14: IPC improvements over S-NUCA ---\n");
  printIpcImprovements(sweep);

  double re = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::ReNuca));
  double r = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::RNuca));
  std::printf("\nRe-NUCA raw-min vs R-NUCA: %+.1f%% (paper: +34.8%%)\n",
              (re / r - 1.0) * 100.0);
  std::printf("paper raw minimums: Naive 7.14, S-NUCA 3.9, Re-NUCA 3.09, "
              "R-NUCA 2.31, Private 2.31\n");
  return 0;
}
