// Figures 17 & 18: sensitivity to ROB size — 168 entries instead of 128.
// A deeper window hides more load latency, so fewer loads block the ROB
// head and the criticality predictor marks fewer lines critical.
//
// Paper: Re-NUCA's raw-min lifetime gain over R-NUCA is +39.9 % (vs +42 %
// at 128 entries); IPC vs S-NUCA +5.2 %.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::robLarge();
  KvConfig kv = setup(argc, argv, "Figs 17/18: ROB = 168 entries sensitivity", cfg);
  BenchSession session(kv, "fig17_18_rob_sensitivity", cfg);
  sim::PolicySweep sweep = runPolicySweep(kv, cfg, sim::allPolicies(), session);

  std::printf("--- Fig 17: per-bank harmonic lifetimes ---\n");
  printLifetimeBars(sweep);
  std::printf("\n--- Fig 18: IPC improvements over S-NUCA ---\n");
  printIpcImprovements(sweep);

  double re = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::ReNuca));
  double r = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::RNuca));
  std::printf("\nRe-NUCA raw-min vs R-NUCA: %+.1f%% (paper: +39.9%%)\n",
              (re / r - 1.0) * 100.0);
  std::printf("paper raw minimums: Naive 7.06, S-NUCA 3.26, Re-NUCA 3.26, "
              "R-NUCA 2.33, Private 2.32\n");
  return 0;
}
