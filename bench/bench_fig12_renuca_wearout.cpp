// Figure 12: per-bank harmonic-mean lifetimes of all five schemes,
// including Re-NUCA — the paper's headline wear-leveling result.
//
// Paper shape: Re-NUCA raises R-NUCA's short-lived banks and trims its
// long-lived ones (wear-leveling), landing near S-NUCA; raw minimum
// lifetime improves ~42 % over R-NUCA at ~equal IPC.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  KvConfig kv = setup(argc, argv, "Fig 12: Re-NUCA wear-leveling", cfg);
  BenchSession session(kv, "fig12_renuca_wearout", cfg);
  sim::PolicySweep sweep = runPolicySweep(kv, cfg, sim::allPolicies(), session);
  printLifetimeBars(sweep);

  double re = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::ReNuca));
  double r = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::RNuca));
  std::printf("\nRe-NUCA raw-min lifetime vs R-NUCA: %+.1f%% (paper: +42%%)\n",
              (re / r - 1.0) * 100.0);
  std::printf("paper raw minimums (years): Naive 4.95, S-NUCA 3.37, Re-NUCA 3.24, "
              "R-NUCA 2.38, Private 2.32\n");
  return 0;
}
