// Placement search on a big mesh, plus the mesh-scale figure.
//
// Part 1 enumerates candidate placements — the eight MC-edge schemes
// (corners, top, ring, ...) and `shuffles=` random bank permutations — on
// one mesh (default 8x8, 64 cores, 4 MCs) and ranks them by
// IPC x min-bank-lifetime.  Part 2 runs {S-NUCA, R-NUCA, Re-NUCA} on both
// the paper's 4x4/16-core CMP and the scaled 8x8/64-core one, the
// "does Re-NUCA's win survive a bigger mesh?" figure.
//
// Extra keys: shuffles=N (random bank permutations to try, default 2).
#include "bench_util.hpp"

#include "sim/placement_search.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  // Big-mesh defaults; override with mesh=/cores=/mc= like any bench.
  cfg.nocCfg.width = 8;
  cfg.nocCfg.height = 8;
  cfg.l3.banks = 64;
  cfg.numCores = 64;
  cfg.placement.numMcs = 4;
  // 64 cores x 10+ candidates: trim the fast-forward so the default run
  // stays in bench territory (prewarm= restores the full budget).
  cfg.prewarmInstrPerCore = 100000;
  KvConfig kv = setup(argc, argv, "Placement search: MC edges, bank shuffles, mesh scale",
                      cfg, {"shuffles"});
  BenchSession session(kv, "placement_search", cfg);

  // --- Part 1: rank placements on the configured mesh -----------------------
  std::vector<sim::PlacementCandidate> candidates =
      sim::mcEdgeCandidates(cfg.placement.numMcs);
  const auto shuffles = static_cast<std::uint32_t>(
      kv.getOr("shuffles", static_cast<std::int64_t>(2)));
  for (sim::PlacementCandidate& c :
       sim::randomBankCandidates(cfg.nocCfg, shuffles, cfg.seed)) {
    c.placement.numMcs = cfg.placement.numMcs;
    candidates.push_back(std::move(c));
  }

  workload::WorkloadMix mix = workload::mixForCores("WL1", cfg.numCores);
  std::vector<sim::RunResult> results =
      runJobs(kv, sim::placementSearchPlan(cfg, mix, candidates), &session);
  std::vector<sim::PlacementScore> ranked = sim::rankPlacements(candidates, results);

  TextTable t({"placement", "IPC", "nocLat", "minLife(y)", "score"});
  for (const sim::PlacementScore& s : ranked) {
    t.addRow({s.name, TextTable::num(s.systemIpc, 3),
              TextTable::num(s.avgNocLatencyCycles, 2),
              TextTable::num(s.minLifetimeYears, 2), TextTable::num(s.score, 3)});
  }
  std::printf("%s", t.toString().c_str());
  std::printf("(%zu candidates on %ux%u, mix %s; score = IPC x min bank lifetime)\n\n",
              ranked.size(), cfg.nocCfg.width, cfg.nocCfg.height, mix.name.c_str());

  // --- Part 2: 4x4 vs 8x8 under the three headline policies -----------------
  struct ScalePoint {
    const char* name;
    std::uint32_t width, height, cores;
  };
  const ScalePoint points[] = {{"4x4", 4, 4, 16}, {"8x8", 8, 8, 64}};
  const core::PolicyKind policies[] = {core::PolicyKind::SNuca,
                                       core::PolicyKind::RNuca,
                                       core::PolicyKind::ReNuca};
  sim::SweepPlan scalePlan;
  for (const ScalePoint& p : points) {
    for (core::PolicyKind kind : policies) {
      sim::Job job;
      job.config = cfg;
      job.config.nocCfg.width = p.width;
      job.config.nocCfg.height = p.height;
      job.config.l3.banks = p.width * p.height;
      job.config.numCores = p.cores;
      // Geometry-specific node lists don't transfer between mesh sizes;
      // keep only the MC scheme.
      job.config.placement = noc::PlacementConfig{};
      job.config.placement.numMcs = cfg.placement.numMcs;
      job.config.placement.mcEdge = cfg.placement.mcEdge;
      job.config.policy = kind;
      job.mix = workload::mixForCores("WL1", p.cores);
      job.label = std::string("scale/") + p.name + "/" + core::toString(kind);
      scalePlan.add(std::move(job));
    }
  }
  std::vector<sim::RunResult> scale = runJobs(kv, scalePlan, &session);

  TextTable st({"mesh", "policy", "IPC", "nocLat", "minLife(y)"});
  std::size_t i = 0;
  for (const ScalePoint& p : points) {
    for (core::PolicyKind kind : policies) {
      const sim::RunResult& r = scale[i++];
      st.addRow({p.name, core::toString(kind), TextTable::num(r.systemIpc, 3),
                 TextTable::num(r.avgNocLatencyCycles, 2),
                 TextTable::num(r.minBankLifetime(), 2)});
    }
  }
  std::printf("%s", st.toString().c_str());
  std::printf("(WL1 recipe at each core count; Re-NUCA vs baselines across mesh scale)\n");
  return 0;
}
