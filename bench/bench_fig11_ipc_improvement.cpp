// Figure 11: per-workload IPC improvement over S-NUCA for R-NUCA, Private,
// and Re-NUCA (default Table I configuration, workloads WL1-WL10).
//
// Paper shape: Private best on average (+8 %), Re-NUCA +5.2 % ~ equal to
// R-NUCA (+4.7 %); nothing catastrophically below S-NUCA.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  KvConfig kv = setup(argc, argv, "Fig 11: IPC improvement over S-NUCA", cfg);
  std::vector<core::PolicyKind> policies = {
      core::PolicyKind::SNuca, core::PolicyKind::RNuca, core::PolicyKind::Private,
      core::PolicyKind::ReNuca};
  BenchSession session(kv, "fig11_ipc_improvement", cfg);
  sim::PolicySweep sweep = runPolicySweep(kv, cfg, policies, session);
  printIpcImprovements(sweep);
  std::printf("\npaper averages: R-NUCA +4.7%%, Private +8%%, Re-NUCA +5.2%%.\n");

  std::printf("\nper-core normalized improvement (equal app weighting):\n");
  for (std::size_t p = 0; p < policies.size(); ++p) {
    if (policies[p] == core::PolicyKind::SNuca) continue;
    std::printf("  %-8s %+.1f%%\n", core::toString(policies[p]),
                arithmeticMean(sweep.perCoreNormalizedImprovement(p)));
  }
  return 0;
}
