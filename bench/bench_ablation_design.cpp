// Ablations of Re-NUCA design choices called out in DESIGN.md §5:
//  * first-touch default: non-critical/S-NUCA (paper) vs critical/R-NUCA;
//  * R-NUCA cluster size: 2 / 4 (paper) / 8;
//  * endurance accounting: bank-level (paper) vs hottest-frame;
//  * LLC inclusion: non-inclusive (default) vs inclusive.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

namespace {

struct Variant {
  std::string name;
  sim::SystemConfig cfg;
};

}  // namespace

int main(int argc, char** argv) {
  sim::SystemConfig base = sim::defaultConfig();
  base.policy = core::PolicyKind::ReNuca;
  KvConfig kv = setup(argc, argv, "Ablation: Re-NUCA design choices", base);
  BenchSession session(kv, "ablation_design", base);
  auto mixes = benchMixes(kv);

  std::vector<Variant> variants;
  variants.push_back({"Re-NUCA (paper defaults)", base});
  {
    Variant v{"first-touch = critical", base};
    v.cfg.cpt.coldPredictsCritical = true;
    variants.push_back(v);
  }
  {
    Variant v{"cluster size 2", base};
    v.cfg.clusterSize = 2;
    variants.push_back(v);
  }
  {
    Variant v{"cluster size 8", base};
    v.cfg.clusterSize = 8;
    variants.push_back(v);
  }
  {
    Variant v{"inclusive LLC", base};
    v.cfg.inclusiveLlc = true;
    variants.push_back(v);
  }
  // EqualChance intra-set wear leveling stacked on Re-NUCA (§VI claims
  // the techniques compose; the hot-frame column is where it shows).
  {
    Variant v{"+ EqualChance (every 4th fill)", base};
    v.cfg.l3.equalChanceEvery = 4;
    variants.push_back(v);
  }
  // Next-line L2 prefetching: helps streaming IPC, but every prefetch
  // fill is another ReRAM write — a wear/performance trade the paper's
  // no-prefetcher configuration sidesteps.
  {
    Variant v{"+ L2 next-line prefetch", base};
    v.cfg.l2PrefetchDegree = 1;
    variants.push_back(v);
  }

  // All (variant x mix) runs are independent: one plan, one parallel pass.
  sim::SweepPlan plan;
  for (const Variant& v : variants) {
    for (const auto& mix : mixes) {
      plan.add(sim::Job{v.name + "/" + mix.name, v.cfg, mix});
    }
  }
  std::vector<sim::RunResult> results = runJobs(kv, plan, &session);

  TextTable t({"variant", "raw min (y)", "h-mean (y)", "hot-frame min (y)",
               "mean system IPC"});
  std::size_t i = 0;
  for (const Variant& v : variants) {
    rram::LifetimeAggregator agg(16);
    rram::LifetimeAggregator hotAgg(16);
    double ipc = 0;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const sim::RunResult& r = results[i++];
      agg.addRun(r.bankLifetimeYears);
      hotAgg.addRun(r.bankLifetimeYearsHotFrame);
      ipc += r.systemIpc;
    }
    t.addRow({v.name, TextTable::num(agg.rawMinimum(), 2),
              TextTable::num(agg.harmonicOverall(), 2),
              TextTable::num(hotAgg.rawMinimum(), 3),
              TextTable::num(ipc / mixes.size(), 2)});
  }

  std::printf("%s", t.toString().c_str());
  std::printf("\nnotes:\n"
              " * 'hot-frame min' uses the hottest-frame endurance bound instead of\n"
              "   the paper's bank-level accounting — intra-bank wear variation is\n"
              "   orders of magnitude larger, which is what i2wap/EqualChance attack\n"
              "   (paper §VI names them as complementary).\n"
              " * first-touch=critical places unknown lines in the cluster: faster\n"
              "   warm-up at the cost of extra cluster wear.\n");
  return 0;
}
