// Figure 5: percentage of loads that do NOT stall the head of the ROB, per
// application (single-core runs).  Paper: >80 % of loads are non-critical
// on average — the headroom Re-NUCA spreads across the cache.
#include "bench_util.hpp"
#include "workload/app_profile.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 40000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = setup(argc, argv, "Fig 5: non-critical loads per application", cfg,
                      {}, /*benchDefaults=*/false);
  BenchSession session(kv, "fig5_rob_stalls", cfg);

  std::vector<std::string> apps;
  for (const workload::AppProfile& p : workload::spec2006Profiles()) {
    apps.push_back(p.name);
  }
  std::vector<sim::RunResult> results = runAppsSingleCore(kv, cfg, apps, session);

  TextTable t({"app", "non-critical loads"});
  double sum = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    t.addRow({apps[i], TextTable::pct(results[i].nonCriticalLoadFrac, 1)});
    sum += results[i].nonCriticalLoadFrac;
  }
  t.addSeparator();
  t.addRow({"Average", TextTable::pct(sum / apps.size(), 1)});
  std::printf("%s", t.toString().c_str());
  std::printf("\npaper: over 80%% of loads do not stall the ROB head, on average.\n");
  return 0;
}
