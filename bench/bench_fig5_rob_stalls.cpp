// Figure 5: percentage of loads that do NOT stall the head of the ROB, per
// application (single-core runs).  Paper: >80 % of loads are non-critical
// on average — the headroom Re-NUCA spreads across the cache.
#include "bench_util.hpp"
#include "workload/app_profile.hpp"

using namespace renuca;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 40000;
  cfg.warmupInstrPerCore = 10000;
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  cfg.applyOverrides(kv);
  std::printf("== Fig 5: non-critical loads per application ==\n");
  std::printf("config: %s\n\n", cfg.summary().c_str());
  bench::BenchSession session(kv, "fig5_rob_stalls", cfg);

  TextTable t({"app", "non-critical loads"});
  double sum = 0;
  int n = 0;
  for (const workload::AppProfile& p : workload::spec2006Profiles()) {
    sim::RunResult r = sim::runSingleApp(cfg, p.name);
    t.addRow({p.name, TextTable::pct(r.nonCriticalLoadFrac, 1)});
    sum += r.nonCriticalLoadFrac;
    ++n;
    session.add(p.name, std::move(r));
  }
  t.addSeparator();
  t.addRow({"Average", TextTable::pct(sum / n, 1)});
  std::printf("%s", t.toString().c_str());
  std::printf("\npaper: over 80%% of loads do not stall the ROB head, on average.\n");
  return 0;
}
