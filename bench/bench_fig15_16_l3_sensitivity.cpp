// Figures 15 & 16: sensitivity to L3 bank size — 1 MB instead of 2 MB.
// Less LLC capacity means more misses, more fills, more ReRAM writes:
// every scheme's lifetime drops.
//
// Paper: Re-NUCA improves raw-min lifetime over R-NUCA from 1.38 to 1.67
// years (+21 %); IPC gains over S-NUCA shrink but stay positive.
#include "bench_util.hpp"

using namespace renuca;
using namespace renuca::bench;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::l3Small();
  KvConfig kv = setup(argc, argv, "Figs 15/16: L3 bank = 1 MB sensitivity", cfg);
  BenchSession session(kv, "fig15_16_l3_sensitivity", cfg);
  sim::PolicySweep sweep = runPolicySweep(kv, cfg, sim::allPolicies(), session);

  std::printf("--- Fig 15: per-bank harmonic lifetimes ---\n");
  printLifetimeBars(sweep);
  std::printf("\n--- Fig 16: IPC improvements over S-NUCA ---\n");
  printIpcImprovements(sweep);

  double re = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::ReNuca));
  double r = sweep.rawMinLifetime(sweep.indexOf(core::PolicyKind::RNuca));
  std::printf("\nRe-NUCA raw-min vs R-NUCA: %+.1f%% (paper: +21%%)\n",
              (re / r - 1.0) * 100.0);
  std::printf("paper raw minimums: Naive 3.64, S-NUCA 1.67, Re-NUCA 1.67, "
              "R-NUCA 1.38, Private 1.38\n");
  return 0;
}
