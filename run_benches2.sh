#!/bin/bash
cd /root/repo
run() { echo "===== $1 ====="; shift; "$@"; echo "(exit $?)"; }
{
run bench_fig5_rob_stalls        ./build/bench/bench_fig5_rob_stalls instr_per_core=25000
run bench_fig7_predictor_accuracy ./build/bench/bench_fig7_predictor_accuracy instr_per_core=20000
run bench_fig8_noncritical_blocks ./build/bench/bench_fig8_noncritical_blocks instr_per_core=20000
run bench_fig9_noncritical_writes ./build/bench/bench_fig9_noncritical_writes instr_per_core=20000
run bench_table2_app_characteristics ./build/bench/bench_table2_app_characteristics
run bench_fig4_tradeoff          ./build/bench/bench_fig4_tradeoff mixes=6
run bench_table3_raw_min_lifetime ./build/bench/bench_table3_raw_min_lifetime mixes=3
run bench_ablation_design_v2     ./build/bench/bench_ablation_design mixes=3
run bench_micro_components       ./build/bench/bench_micro_components --benchmark_min_time=0.05s
echo ALL_BENCHES2_DONE
} >> bench_output.txt 2>&1
