file(REMOVE_RECURSE
  "CMakeFiles/wear_leveling_study.dir/wear_leveling_study.cpp.o"
  "CMakeFiles/wear_leveling_study.dir/wear_leveling_study.cpp.o.d"
  "wear_leveling_study"
  "wear_leveling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_leveling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
