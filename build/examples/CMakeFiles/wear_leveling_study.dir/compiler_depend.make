# Empty compiler generated dependencies file for wear_leveling_study.
# This may be replaced when dependencies are built.
