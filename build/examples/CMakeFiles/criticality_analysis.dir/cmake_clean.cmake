file(REMOVE_RECURSE
  "CMakeFiles/criticality_analysis.dir/criticality_analysis.cpp.o"
  "CMakeFiles/criticality_analysis.dir/criticality_analysis.cpp.o.d"
  "criticality_analysis"
  "criticality_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criticality_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
