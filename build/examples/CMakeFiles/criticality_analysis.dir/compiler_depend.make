# Empty compiler generated dependencies file for criticality_analysis.
# This may be replaced when dependencies are built.
