# Empty dependencies file for shared_memory_mesi.
# This may be replaced when dependencies are built.
