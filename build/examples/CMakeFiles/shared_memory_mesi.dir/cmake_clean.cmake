file(REMOVE_RECURSE
  "CMakeFiles/shared_memory_mesi.dir/shared_memory_mesi.cpp.o"
  "CMakeFiles/shared_memory_mesi.dir/shared_memory_mesi.cpp.o.d"
  "shared_memory_mesi"
  "shared_memory_mesi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_memory_mesi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
