# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("workload")
subdirs("mem")
subdirs("tlb")
subdirs("noc")
subdirs("dram")
subdirs("coherence")
subdirs("cpu")
subdirs("rram")
subdirs("core")
subdirs("sim")
