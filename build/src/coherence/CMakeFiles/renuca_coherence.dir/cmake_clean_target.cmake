file(REMOVE_RECURSE
  "librenuca_coherence.a"
)
