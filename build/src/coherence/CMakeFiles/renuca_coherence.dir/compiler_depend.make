# Empty compiler generated dependencies file for renuca_coherence.
# This may be replaced when dependencies are built.
