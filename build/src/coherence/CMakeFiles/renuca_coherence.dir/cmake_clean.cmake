file(REMOVE_RECURSE
  "CMakeFiles/renuca_coherence.dir/mesi.cpp.o"
  "CMakeFiles/renuca_coherence.dir/mesi.cpp.o.d"
  "librenuca_coherence.a"
  "librenuca_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
