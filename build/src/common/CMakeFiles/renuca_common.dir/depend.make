# Empty dependencies file for renuca_common.
# This may be replaced when dependencies are built.
