file(REMOVE_RECURSE
  "librenuca_common.a"
)
