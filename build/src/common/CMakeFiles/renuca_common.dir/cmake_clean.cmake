file(REMOVE_RECURSE
  "CMakeFiles/renuca_common.dir/busy_calendar.cpp.o"
  "CMakeFiles/renuca_common.dir/busy_calendar.cpp.o.d"
  "CMakeFiles/renuca_common.dir/kvconfig.cpp.o"
  "CMakeFiles/renuca_common.dir/kvconfig.cpp.o.d"
  "CMakeFiles/renuca_common.dir/log.cpp.o"
  "CMakeFiles/renuca_common.dir/log.cpp.o.d"
  "CMakeFiles/renuca_common.dir/rng.cpp.o"
  "CMakeFiles/renuca_common.dir/rng.cpp.o.d"
  "CMakeFiles/renuca_common.dir/stats.cpp.o"
  "CMakeFiles/renuca_common.dir/stats.cpp.o.d"
  "CMakeFiles/renuca_common.dir/table.cpp.o"
  "CMakeFiles/renuca_common.dir/table.cpp.o.d"
  "librenuca_common.a"
  "librenuca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
