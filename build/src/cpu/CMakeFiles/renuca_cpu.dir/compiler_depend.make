# Empty compiler generated dependencies file for renuca_cpu.
# This may be replaced when dependencies are built.
