file(REMOVE_RECURSE
  "librenuca_cpu.a"
)
