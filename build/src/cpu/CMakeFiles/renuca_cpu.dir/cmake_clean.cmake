file(REMOVE_RECURSE
  "CMakeFiles/renuca_cpu.dir/core.cpp.o"
  "CMakeFiles/renuca_cpu.dir/core.cpp.o.d"
  "librenuca_cpu.a"
  "librenuca_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
