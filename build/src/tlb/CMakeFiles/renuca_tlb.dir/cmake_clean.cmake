file(REMOVE_RECURSE
  "CMakeFiles/renuca_tlb.dir/tlb.cpp.o"
  "CMakeFiles/renuca_tlb.dir/tlb.cpp.o.d"
  "librenuca_tlb.a"
  "librenuca_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
