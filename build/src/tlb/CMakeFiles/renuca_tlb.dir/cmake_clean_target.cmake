file(REMOVE_RECURSE
  "librenuca_tlb.a"
)
