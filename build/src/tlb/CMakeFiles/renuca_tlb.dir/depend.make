# Empty dependencies file for renuca_tlb.
# This may be replaced when dependencies are built.
