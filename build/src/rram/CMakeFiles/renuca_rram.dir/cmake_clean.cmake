file(REMOVE_RECURSE
  "CMakeFiles/renuca_rram.dir/endurance.cpp.o"
  "CMakeFiles/renuca_rram.dir/endurance.cpp.o.d"
  "librenuca_rram.a"
  "librenuca_rram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_rram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
