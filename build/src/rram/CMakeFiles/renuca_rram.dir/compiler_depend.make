# Empty compiler generated dependencies file for renuca_rram.
# This may be replaced when dependencies are built.
