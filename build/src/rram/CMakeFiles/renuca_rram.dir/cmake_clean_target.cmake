file(REMOVE_RECURSE
  "librenuca_rram.a"
)
