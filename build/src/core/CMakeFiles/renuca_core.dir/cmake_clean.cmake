file(REMOVE_RECURSE
  "CMakeFiles/renuca_core.dir/cpt.cpp.o"
  "CMakeFiles/renuca_core.dir/cpt.cpp.o.d"
  "CMakeFiles/renuca_core.dir/naive.cpp.o"
  "CMakeFiles/renuca_core.dir/naive.cpp.o.d"
  "CMakeFiles/renuca_core.dir/policy_factory.cpp.o"
  "CMakeFiles/renuca_core.dir/policy_factory.cpp.o.d"
  "CMakeFiles/renuca_core.dir/private_policy.cpp.o"
  "CMakeFiles/renuca_core.dir/private_policy.cpp.o.d"
  "CMakeFiles/renuca_core.dir/renuca_policy.cpp.o"
  "CMakeFiles/renuca_core.dir/renuca_policy.cpp.o.d"
  "CMakeFiles/renuca_core.dir/rnuca.cpp.o"
  "CMakeFiles/renuca_core.dir/rnuca.cpp.o.d"
  "CMakeFiles/renuca_core.dir/snuca.cpp.o"
  "CMakeFiles/renuca_core.dir/snuca.cpp.o.d"
  "librenuca_core.a"
  "librenuca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
