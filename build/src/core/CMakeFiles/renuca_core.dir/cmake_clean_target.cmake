file(REMOVE_RECURSE
  "librenuca_core.a"
)
