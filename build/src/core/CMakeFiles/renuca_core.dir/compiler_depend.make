# Empty compiler generated dependencies file for renuca_core.
# This may be replaced when dependencies are built.
