
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cpt.cpp" "src/core/CMakeFiles/renuca_core.dir/cpt.cpp.o" "gcc" "src/core/CMakeFiles/renuca_core.dir/cpt.cpp.o.d"
  "/root/repo/src/core/naive.cpp" "src/core/CMakeFiles/renuca_core.dir/naive.cpp.o" "gcc" "src/core/CMakeFiles/renuca_core.dir/naive.cpp.o.d"
  "/root/repo/src/core/policy_factory.cpp" "src/core/CMakeFiles/renuca_core.dir/policy_factory.cpp.o" "gcc" "src/core/CMakeFiles/renuca_core.dir/policy_factory.cpp.o.d"
  "/root/repo/src/core/private_policy.cpp" "src/core/CMakeFiles/renuca_core.dir/private_policy.cpp.o" "gcc" "src/core/CMakeFiles/renuca_core.dir/private_policy.cpp.o.d"
  "/root/repo/src/core/renuca_policy.cpp" "src/core/CMakeFiles/renuca_core.dir/renuca_policy.cpp.o" "gcc" "src/core/CMakeFiles/renuca_core.dir/renuca_policy.cpp.o.d"
  "/root/repo/src/core/rnuca.cpp" "src/core/CMakeFiles/renuca_core.dir/rnuca.cpp.o" "gcc" "src/core/CMakeFiles/renuca_core.dir/rnuca.cpp.o.d"
  "/root/repo/src/core/snuca.cpp" "src/core/CMakeFiles/renuca_core.dir/snuca.cpp.o" "gcc" "src/core/CMakeFiles/renuca_core.dir/snuca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/renuca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/renuca_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/renuca_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/renuca_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/renuca_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
