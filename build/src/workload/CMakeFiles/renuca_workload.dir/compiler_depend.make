# Empty compiler generated dependencies file for renuca_workload.
# This may be replaced when dependencies are built.
