file(REMOVE_RECURSE
  "CMakeFiles/renuca_workload.dir/app_profile.cpp.o"
  "CMakeFiles/renuca_workload.dir/app_profile.cpp.o.d"
  "CMakeFiles/renuca_workload.dir/generator.cpp.o"
  "CMakeFiles/renuca_workload.dir/generator.cpp.o.d"
  "CMakeFiles/renuca_workload.dir/mixes.cpp.o"
  "CMakeFiles/renuca_workload.dir/mixes.cpp.o.d"
  "CMakeFiles/renuca_workload.dir/trace.cpp.o"
  "CMakeFiles/renuca_workload.dir/trace.cpp.o.d"
  "librenuca_workload.a"
  "librenuca_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
