file(REMOVE_RECURSE
  "librenuca_workload.a"
)
