
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_profile.cpp" "src/workload/CMakeFiles/renuca_workload.dir/app_profile.cpp.o" "gcc" "src/workload/CMakeFiles/renuca_workload.dir/app_profile.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/renuca_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/renuca_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/mixes.cpp" "src/workload/CMakeFiles/renuca_workload.dir/mixes.cpp.o" "gcc" "src/workload/CMakeFiles/renuca_workload.dir/mixes.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/renuca_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/renuca_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/renuca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
