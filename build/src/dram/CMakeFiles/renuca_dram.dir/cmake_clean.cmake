file(REMOVE_RECURSE
  "CMakeFiles/renuca_dram.dir/dram.cpp.o"
  "CMakeFiles/renuca_dram.dir/dram.cpp.o.d"
  "CMakeFiles/renuca_dram.dir/frfcfs.cpp.o"
  "CMakeFiles/renuca_dram.dir/frfcfs.cpp.o.d"
  "librenuca_dram.a"
  "librenuca_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
