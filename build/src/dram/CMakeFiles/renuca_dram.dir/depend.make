# Empty dependencies file for renuca_dram.
# This may be replaced when dependencies are built.
