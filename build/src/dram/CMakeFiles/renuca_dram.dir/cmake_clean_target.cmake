file(REMOVE_RECURSE
  "librenuca_dram.a"
)
