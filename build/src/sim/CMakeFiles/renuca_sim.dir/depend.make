# Empty dependencies file for renuca_sim.
# This may be replaced when dependencies are built.
