file(REMOVE_RECURSE
  "librenuca_sim.a"
)
