file(REMOVE_RECURSE
  "CMakeFiles/renuca_sim.dir/config.cpp.o"
  "CMakeFiles/renuca_sim.dir/config.cpp.o.d"
  "CMakeFiles/renuca_sim.dir/experiment.cpp.o"
  "CMakeFiles/renuca_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/renuca_sim.dir/memory_system.cpp.o"
  "CMakeFiles/renuca_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/renuca_sim.dir/system.cpp.o"
  "CMakeFiles/renuca_sim.dir/system.cpp.o.d"
  "librenuca_sim.a"
  "librenuca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
