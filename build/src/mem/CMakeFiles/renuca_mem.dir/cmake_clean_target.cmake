file(REMOVE_RECURSE
  "librenuca_mem.a"
)
