# Empty dependencies file for renuca_mem.
# This may be replaced when dependencies are built.
