file(REMOVE_RECURSE
  "CMakeFiles/renuca_mem.dir/cache.cpp.o"
  "CMakeFiles/renuca_mem.dir/cache.cpp.o.d"
  "CMakeFiles/renuca_mem.dir/mshr.cpp.o"
  "CMakeFiles/renuca_mem.dir/mshr.cpp.o.d"
  "librenuca_mem.a"
  "librenuca_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
