file(REMOVE_RECURSE
  "librenuca_noc.a"
)
