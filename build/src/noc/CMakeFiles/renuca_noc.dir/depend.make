# Empty dependencies file for renuca_noc.
# This may be replaced when dependencies are built.
