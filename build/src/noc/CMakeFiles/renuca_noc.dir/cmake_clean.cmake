file(REMOVE_RECURSE
  "CMakeFiles/renuca_noc.dir/mesh.cpp.o"
  "CMakeFiles/renuca_noc.dir/mesh.cpp.o.d"
  "librenuca_noc.a"
  "librenuca_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renuca_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
