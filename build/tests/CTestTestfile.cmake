# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_cpt[1]_include.cmake")
include("/root/repo/build/tests/test_rram[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_system_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
