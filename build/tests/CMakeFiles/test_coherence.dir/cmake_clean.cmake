file(REMOVE_RECURSE
  "CMakeFiles/test_coherence.dir/test_coherence.cpp.o"
  "CMakeFiles/test_coherence.dir/test_coherence.cpp.o.d"
  "test_coherence"
  "test_coherence.pdb"
  "test_coherence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
