file(REMOVE_RECURSE
  "CMakeFiles/test_tlb.dir/test_tlb.cpp.o"
  "CMakeFiles/test_tlb.dir/test_tlb.cpp.o.d"
  "test_tlb"
  "test_tlb.pdb"
  "test_tlb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
