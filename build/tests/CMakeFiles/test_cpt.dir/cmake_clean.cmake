file(REMOVE_RECURSE
  "CMakeFiles/test_cpt.dir/test_cpt.cpp.o"
  "CMakeFiles/test_cpt.dir/test_cpt.cpp.o.d"
  "test_cpt"
  "test_cpt.pdb"
  "test_cpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
