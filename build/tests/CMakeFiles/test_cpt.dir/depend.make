# Empty dependencies file for test_cpt.
# This may be replaced when dependencies are built.
