file(REMOVE_RECURSE
  "CMakeFiles/test_memory_system.dir/test_memory_system.cpp.o"
  "CMakeFiles/test_memory_system.dir/test_memory_system.cpp.o.d"
  "test_memory_system"
  "test_memory_system.pdb"
  "test_memory_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
