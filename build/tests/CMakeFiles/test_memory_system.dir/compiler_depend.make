# Empty compiler generated dependencies file for test_memory_system.
# This may be replaced when dependencies are built.
