# Empty dependencies file for test_rram.
# This may be replaced when dependencies are built.
