file(REMOVE_RECURSE
  "CMakeFiles/test_rram.dir/test_rram.cpp.o"
  "CMakeFiles/test_rram.dir/test_rram.cpp.o.d"
  "test_rram"
  "test_rram.pdb"
  "test_rram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
