# Empty dependencies file for bench_fig11_ipc_improvement.
# This may be replaced when dependencies are built.
