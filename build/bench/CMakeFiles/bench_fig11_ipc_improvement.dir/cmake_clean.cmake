file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ipc_improvement.dir/bench_fig11_ipc_improvement.cpp.o"
  "CMakeFiles/bench_fig11_ipc_improvement.dir/bench_fig11_ipc_improvement.cpp.o.d"
  "bench_fig11_ipc_improvement"
  "bench_fig11_ipc_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ipc_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
