file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_l2_sensitivity.dir/bench_fig13_14_l2_sensitivity.cpp.o"
  "CMakeFiles/bench_fig13_14_l2_sensitivity.dir/bench_fig13_14_l2_sensitivity.cpp.o.d"
  "bench_fig13_14_l2_sensitivity"
  "bench_fig13_14_l2_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_l2_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
