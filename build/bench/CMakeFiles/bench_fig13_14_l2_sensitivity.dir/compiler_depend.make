# Empty compiler generated dependencies file for bench_fig13_14_l2_sensitivity.
# This may be replaced when dependencies are built.
