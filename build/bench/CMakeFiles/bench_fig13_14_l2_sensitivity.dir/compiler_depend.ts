# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig13_14_l2_sensitivity.
