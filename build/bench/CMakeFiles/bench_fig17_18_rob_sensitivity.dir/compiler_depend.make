# Empty compiler generated dependencies file for bench_fig17_18_rob_sensitivity.
# This may be replaced when dependencies are built.
