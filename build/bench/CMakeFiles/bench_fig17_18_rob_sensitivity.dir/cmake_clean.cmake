file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_18_rob_sensitivity.dir/bench_fig17_18_rob_sensitivity.cpp.o"
  "CMakeFiles/bench_fig17_18_rob_sensitivity.dir/bench_fig17_18_rob_sensitivity.cpp.o.d"
  "bench_fig17_18_rob_sensitivity"
  "bench_fig17_18_rob_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_rob_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
