file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_app_characteristics.dir/bench_table2_app_characteristics.cpp.o"
  "CMakeFiles/bench_table2_app_characteristics.dir/bench_table2_app_characteristics.cpp.o.d"
  "bench_table2_app_characteristics"
  "bench_table2_app_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_app_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
