# Empty dependencies file for bench_table2_app_characteristics.
# This may be replaced when dependencies are built.
