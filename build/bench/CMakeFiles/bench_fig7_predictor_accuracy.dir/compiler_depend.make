# Empty compiler generated dependencies file for bench_fig7_predictor_accuracy.
# This may be replaced when dependencies are built.
