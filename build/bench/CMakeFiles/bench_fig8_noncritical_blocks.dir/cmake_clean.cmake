file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_noncritical_blocks.dir/bench_fig8_noncritical_blocks.cpp.o"
  "CMakeFiles/bench_fig8_noncritical_blocks.dir/bench_fig8_noncritical_blocks.cpp.o.d"
  "bench_fig8_noncritical_blocks"
  "bench_fig8_noncritical_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_noncritical_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
