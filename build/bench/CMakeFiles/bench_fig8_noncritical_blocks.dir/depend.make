# Empty dependencies file for bench_fig8_noncritical_blocks.
# This may be replaced when dependencies are built.
