file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_raw_min_lifetime.dir/bench_table3_raw_min_lifetime.cpp.o"
  "CMakeFiles/bench_table3_raw_min_lifetime.dir/bench_table3_raw_min_lifetime.cpp.o.d"
  "bench_table3_raw_min_lifetime"
  "bench_table3_raw_min_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_raw_min_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
