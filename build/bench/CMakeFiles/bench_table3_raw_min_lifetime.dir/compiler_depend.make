# Empty compiler generated dependencies file for bench_table3_raw_min_lifetime.
# This may be replaced when dependencies are built.
