file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tradeoff.dir/bench_fig4_tradeoff.cpp.o"
  "CMakeFiles/bench_fig4_tradeoff.dir/bench_fig4_tradeoff.cpp.o.d"
  "bench_fig4_tradeoff"
  "bench_fig4_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
