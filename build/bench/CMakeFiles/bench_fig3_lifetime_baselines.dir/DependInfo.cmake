
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_lifetime_baselines.cpp" "bench/CMakeFiles/bench_fig3_lifetime_baselines.dir/bench_fig3_lifetime_baselines.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_lifetime_baselines.dir/bench_fig3_lifetime_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/renuca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/renuca_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/renuca_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/renuca_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/rram/CMakeFiles/renuca_rram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/renuca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/renuca_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/renuca_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/renuca_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/renuca_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/renuca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
