file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lifetime_baselines.dir/bench_fig3_lifetime_baselines.cpp.o"
  "CMakeFiles/bench_fig3_lifetime_baselines.dir/bench_fig3_lifetime_baselines.cpp.o.d"
  "bench_fig3_lifetime_baselines"
  "bench_fig3_lifetime_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lifetime_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
