# Empty dependencies file for bench_fig3_lifetime_baselines.
# This may be replaced when dependencies are built.
