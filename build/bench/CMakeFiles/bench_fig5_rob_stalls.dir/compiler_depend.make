# Empty compiler generated dependencies file for bench_fig5_rob_stalls.
# This may be replaced when dependencies are built.
