file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rob_stalls.dir/bench_fig5_rob_stalls.cpp.o"
  "CMakeFiles/bench_fig5_rob_stalls.dir/bench_fig5_rob_stalls.cpp.o.d"
  "bench_fig5_rob_stalls"
  "bench_fig5_rob_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rob_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
