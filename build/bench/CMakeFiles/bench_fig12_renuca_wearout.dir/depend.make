# Empty dependencies file for bench_fig12_renuca_wearout.
# This may be replaced when dependencies are built.
