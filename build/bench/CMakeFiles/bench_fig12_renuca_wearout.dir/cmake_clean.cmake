file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_renuca_wearout.dir/bench_fig12_renuca_wearout.cpp.o"
  "CMakeFiles/bench_fig12_renuca_wearout.dir/bench_fig12_renuca_wearout.cpp.o.d"
  "bench_fig12_renuca_wearout"
  "bench_fig12_renuca_wearout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_renuca_wearout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
