file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cpp.o"
  "CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cpp.o.d"
  "bench_ablation_threshold"
  "bench_ablation_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
