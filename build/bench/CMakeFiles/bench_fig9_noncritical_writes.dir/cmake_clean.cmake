file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_noncritical_writes.dir/bench_fig9_noncritical_writes.cpp.o"
  "CMakeFiles/bench_fig9_noncritical_writes.dir/bench_fig9_noncritical_writes.cpp.o.d"
  "bench_fig9_noncritical_writes"
  "bench_fig9_noncritical_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_noncritical_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
