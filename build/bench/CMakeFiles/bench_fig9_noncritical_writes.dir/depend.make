# Empty dependencies file for bench_fig9_noncritical_writes.
# This may be replaced when dependencies are built.
