file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_l3_sensitivity.dir/bench_fig15_16_l3_sensitivity.cpp.o"
  "CMakeFiles/bench_fig15_16_l3_sensitivity.dir/bench_fig15_16_l3_sensitivity.cpp.o.d"
  "bench_fig15_16_l3_sensitivity"
  "bench_fig15_16_l3_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_l3_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
