# Empty dependencies file for trace_stats.
# This may be replaced when dependencies are built.
