file(REMOVE_RECURSE
  "CMakeFiles/trace_stats.dir/trace_stats.cpp.o"
  "CMakeFiles/trace_stats.dir/trace_stats.cpp.o.d"
  "trace_stats"
  "trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
