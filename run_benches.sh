#!/bin/bash
# Runs every bench binary sequentially, teeing to bench_output.txt.
# Each figure/table bench also writes a machine-readable run report into a
# timestamped bench_reports/<stamp>/ directory (see DESIGN.md, telemetry).
cd /root/repo
stamp=$(date +%Y%m%d-%H%M%S)
report_dir="bench_reports/$stamp"
mkdir -p "$report_dir"
: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] || continue
  [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "===== $name =====" | tee -a bench_output.txt
  case "$name" in
    bench_micro_components)
      # google-benchmark harness: its own flags, its own JSON format.
      "$b" "--benchmark_out=$report_dir/$name.json" \
           "--benchmark_out_format=json" >> bench_output.txt 2>&1
      ;;
    *)
      "$b" "report_json=$report_dir/$name.json" >> bench_output.txt 2>&1
      ;;
  esac
  echo "(exit $?)" >> bench_output.txt
done
echo "reports in $report_dir" | tee -a bench_output.txt
echo ALL_BENCHES_DONE | tee -a bench_output.txt
