#!/bin/bash
# Runs the bench binaries sequentially, teeing to bench_output.txt.
#
#   ./run_benches.sh              # full suite, every bench binary
#   ./run_benches.sh --quick      # reduced-budget subset (old run_benches2)
#   ./run_benches.sh --jobs 8     # forward jobs=8 to every sweep-engine bench
#   ./run_benches.sh --server     # route the quick fig7/8/9 grid through a
#                                 # renucad daemon and assert the served
#                                 # reports match the direct runs
#
# Each figure/table bench writes a machine-readable run report into a
# timestamped bench_reports/<stamp>/ directory (see DESIGN.md, telemetry);
# per-bench wall time lands in bench_reports/<stamp>/times.tsv.
cd /root/repo

quick=0
server=0
jobs=1
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick=1 ;;
    --server) server=1 ;;
    --jobs)  shift; jobs="$1" ;;
    --jobs=*) jobs="${1#--jobs=}" ;;
    *) echo "usage: $0 [--quick] [--server] [--jobs N]" >&2; exit 2 ;;
  esac
  shift
done

stamp=$(date +%Y%m%d-%H%M%S)
report_dir="bench_reports/$stamp"
mkdir -p "$report_dir"
: > bench_output.txt
printf 'bench\texit\tseconds\n' > "$report_dir/times.tsv"

# run <name> <cmd...>: tees a banner, times the bench, records wall time.
run() {
  local name=$1
  shift
  echo "===== $name =====" | tee -a bench_output.txt
  local t0 t1 rc
  t0=$(date +%s.%N)
  "$@" >> bench_output.txt 2>&1
  rc=$?
  t1=$(date +%s.%N)
  echo "(exit $rc)" >> bench_output.txt
  printf '%s\t%d\t%.2f\n' "$name" "$rc" "$(echo "$t1 $t0" | awk '{print $1 - $2}')" \
    >> "$report_dir/times.tsv"
}

if [ "$server" = 1 ]; then
  # Simulation-service round trip: run the quick fig7/8/9 criticality grid
  # directly, then run the *same* 72 (app x threshold) jobs through a
  # renucad daemon over its Unix socket, and require every served run
  # report to match the direct one structurally (the determinism contract:
  # results are identical modulo provenance no matter which path ran them).
  run bench_fig7_predictor_accuracy ./build/bench/bench_fig7_predictor_accuracy instr_per_core=20000 "jobs=$jobs" "snapshot_dir=$report_dir/warm" "report_json=$report_dir/bench_fig7_predictor_accuracy.json"
  run bench_fig8_noncritical_blocks ./build/bench/bench_fig8_noncritical_blocks instr_per_core=20000 "jobs=$jobs" "snapshot_dir=$report_dir/warm" "report_json=$report_dir/bench_fig8_noncritical_blocks.json"
  run bench_fig9_noncritical_writes ./build/bench/bench_fig9_noncritical_writes instr_per_core=20000 "jobs=$jobs" "snapshot_dir=$report_dir/warm" "report_json=$report_dir/bench_fig9_noncritical_writes.json"

  batch="$report_dir/server_batch.txt"
  for a in mcf GemsFDTD lbm milc astar bwaves bzip2 leslie3d; do
    for x in 3 5 10 20 25 33 50 75 100; do
      echo "rig=single_core app=$a threshold_pct=$x warmup=10000 instr_per_core=20000 label=$a/x$x" >> "$batch"
    done
  done

  sock="/tmp/renucad-bench-$$.sock"
  ./build/tools/renucad "socket=$sock" "jobs=$jobs" queue=128 \
      "snapshot_dir=$report_dir/warm" > "$report_dir/renucad.log" 2>&1 &
  daemon=$!
  # Any early exit (daemon never came up, client failed, set -e in a
  # caller) must not leave an orphaned renucad holding the socket.
  trap 'kill -TERM "$daemon" 2>/dev/null; wait "$daemon" 2>/dev/null' EXIT
  for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
  [ -S "$sock" ] || { echo "renucad did not come up" >&2; cat "$report_dir/renucad.log" >&2; exit 1; }

  mkdir -p "$report_dir/served"
  run renuca_client_batch ./build/tools/renuca_client "socket=$sock" \
      "batch=$batch" --wait "report_dir=$report_dir/served"

  kill -TERM "$daemon"
  wait "$daemon"
  daemon_rc=$?
  trap - EXIT  # clean shutdown took over; the trap's job is done
  if [ "$daemon_rc" != 0 ]; then
    echo "renucad did not drain cleanly (exit $daemon_rc)" >&2
    cat "$report_dir/renucad.log" >&2
    exit 1
  fi
  echo "renucad drained cleanly (exit 0)" | tee -a bench_output.txt

  python3 - "$report_dir" <<'EOF' | tee -a bench_output.txt
import json, sys, pathlib
rd = pathlib.Path(sys.argv[1])
figs = ["bench_fig7_predictor_accuracy", "bench_fig8_noncritical_blocks",
        "bench_fig9_noncritical_writes"]
mismatches = checked = 0
for fig in figs:
    direct = json.loads((rd / f"{fig}.json").read_text())
    for run in direct["runs"]:
        label = run["label"]
        served_path = rd / "served" / (label.replace("/", "_") + ".json")
        if not served_path.exists():
            print(f"MISSING served report for {label}")
            mismatches += 1
            continue
        served = json.loads(served_path.read_text())["runs"][0]
        checked += 1
        if served != run:
            print(f"MISMATCH {fig} {label}")
            mismatches += 1
print(f"server round trip: {checked} runs checked, {mismatches} mismatches")
sys.exit(1 if mismatches or not checked else 0)
EOF
  rc=${PIPESTATUS[0]}
  [ "$rc" = 0 ] || { echo "served reports diverged from direct runs" >&2; exit 1; }
  echo "reports in $report_dir" | tee -a bench_output.txt
  cat "$report_dir/times.tsv" | tee -a bench_output.txt
  echo ALL_BENCHES_DONE | tee -a bench_output.txt
  exit 0
fi

if [ "$quick" = 1 ]; then
  # Reduced-budget subset: the quick sanity pass that used to live in
  # run_benches2.sh.
  run bench_fig5_rob_stalls         ./build/bench/bench_fig5_rob_stalls instr_per_core=25000 "jobs=$jobs" "report_json=$report_dir/bench_fig5_rob_stalls.json"
  # The criticality benches share warm-state snapshots (snapshot_dir=):
  # their threshold sweeps differ only in measurement-window knobs, so one
  # fast-forward per app serves all of them — fig7 writes the snapshots,
  # fig8/fig9 restore them (see src/sim/fingerprint.hpp).
  run bench_fig7_predictor_accuracy ./build/bench/bench_fig7_predictor_accuracy instr_per_core=20000 "jobs=$jobs" "snapshot_dir=$report_dir/warm" "report_json=$report_dir/bench_fig7_predictor_accuracy.json"
  run bench_fig8_noncritical_blocks ./build/bench/bench_fig8_noncritical_blocks instr_per_core=20000 "jobs=$jobs" "snapshot_dir=$report_dir/warm" "report_json=$report_dir/bench_fig8_noncritical_blocks.json"
  run bench_fig9_noncritical_writes ./build/bench/bench_fig9_noncritical_writes instr_per_core=20000 "jobs=$jobs" "snapshot_dir=$report_dir/warm" "report_json=$report_dir/bench_fig9_noncritical_writes.json"
  run bench_table2_app_characteristics ./build/bench/bench_table2_app_characteristics "jobs=$jobs" "report_json=$report_dir/bench_table2_app_characteristics.json"
  run bench_fig4_tradeoff           ./build/bench/bench_fig4_tradeoff mixes=6 "jobs=$jobs" "report_json=$report_dir/bench_fig4_tradeoff.json"
  run bench_table3_raw_min_lifetime ./build/bench/bench_table3_raw_min_lifetime mixes=3 "jobs=$jobs" "report_json=$report_dir/bench_table3_raw_min_lifetime.json"
  run bench_ablation_design         ./build/bench/bench_ablation_design mixes=3 "jobs=$jobs" "report_json=$report_dir/bench_ablation_design.json"
  run bench_compression             ./build/bench/bench_compression mixes=3 "jobs=$jobs" "report_json=$report_dir/bench_compression.json"
  run bench_placement_search        ./build/bench/bench_placement_search instr_per_core=4000 warmup=1000 prewarm=30000 "jobs=$jobs" "report_json=$report_dir/bench_placement_search.json"
  run bench_micro_components        ./build/bench/bench_micro_components --benchmark_min_time=0.05 "--benchmark_out=$report_dir/bench_micro_components.json" --benchmark_out_format=json
else
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    [ -f "$b" ] || continue
    name=$(basename "$b")
    case "$name" in
      bench_micro_components)
        # google-benchmark harness: its own flags, its own JSON format.
        run "$name" "$b" "--benchmark_out=$report_dir/$name.json" --benchmark_out_format=json
        ;;
      *)
        run "$name" "$b" "jobs=$jobs" "snapshot_dir=$report_dir/warm" "report_json=$report_dir/$name.json"
        ;;
    esac
  done
fi

echo "reports in $report_dir" | tee -a bench_output.txt
cat "$report_dir/times.tsv" | tee -a bench_output.txt
echo ALL_BENCHES_DONE | tee -a bench_output.txt
