#!/bin/bash
# Runs every bench binary sequentially, teeing to bench_output.txt.
cd /root/repo
: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] || continue
  [ -f "$b" ] || continue
  echo "===== $(basename $b) =====" | tee -a bench_output.txt
  "$b" >> bench_output.txt 2>&1
  echo "(exit $?)" >> bench_output.txt
done
echo ALL_BENCHES_DONE | tee -a bench_output.txt
